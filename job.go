package correctbench

import (
	"context"
	"errors"
	"sync"
	"time"

	"correctbench/internal/harness"
	"correctbench/internal/obs"
)

// JobState is a job's lifecycle state as reported by Snapshot.
type JobState string

// Job states.
const (
	JobRunning   JobState = "running"
	JobSucceeded JobState = "succeeded"
	JobFailed    JobState = "failed"
	JobCanceled  JobState = "canceled"
)

// Job is one submitted experiment. It exposes a typed event stream
// (Events), blocking completion (Wait), cooperative cancellation
// (Cancel) and live partial results (Snapshot). All methods are safe
// for concurrent use.
type Job struct {
	id     string
	spec   ExperimentSpec
	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	update chan struct{} // closed and replaced on every publish
	events []Event       // full history, replayed to late subscribers
	closed bool          // true once JobDone has been published

	total     int
	cellsDone int
	grades    map[string]map[string]int // method -> grade -> count
	tables    map[string]string
	exp       *Experiment
	err       error

	// Result-store usage. storeEnabled is set at submission when the
	// client's store applies to this job; the counters tally released
	// cells (CellFinished.Cached) and therefore track live progress —
	// a fully warm job reaches storeHits == total with zero simulated.
	storeEnabled bool
	storeHits    int
	storeMisses  int
	// storeUsage is the harness's final store accounting (retries,
	// drops, degraded mode), available once the run finished.
	storeUsage StoreUsage

	// trace collects the job's per-cell span trees (nil when the job
	// was submitted with NoTrace); observer is the client's shared
	// latency aggregator, bumped once per released cell for the
	// /metrics completion-rate window. Both are written by the harness
	// and internally synchronized.
	trace    *obs.JobTrace
	observer *obs.Observer
}

// ID returns the job's client-assigned identifier.
func (j *Job) ID() string { return j.id }

// finished reports whether the job has published JobDone.
func (j *Job) finished() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// Spec returns the spec exactly as submitted — zero/empty fields are
// not rewritten to their defaults (the normalized grid is what
// JobStarted and Snapshot report), and slice fields alias the
// caller's slices.
func (j *Job) Spec() ExperimentSpec { return j.spec }

// Cancel requests cooperative cancellation: workers stop within one
// simulation step batch, the event stream terminates with
// JobDone{Err: context.Canceled}, and Wait returns context.Canceled.
// Cancelling a finished job is a no-op.
func (j *Job) Cancel() { j.cancel() }

// Wait blocks until the job finishes (or ctx is cancelled, which does
// NOT cancel the job — use Cancel for that) and returns the final
// results. A cancelled job returns context.Canceled.
func (j *Job) Wait(ctx context.Context) (*Experiment, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.exp, j.err
}

// Events returns a channel that replays the job's full event history
// and then follows it live, closing after JobDone. Each call returns
// an independent subscription; the caller must drain the channel (use
// EventsContext to abandon one early).
func (j *Job) Events() <-chan Event {
	return j.EventsContext(context.Background())
}

// EventsContext is Events with a subscription lifetime: when ctx is
// cancelled the channel is closed early and the subscription's
// resources are released. Cancelling the subscription does not cancel
// the job.
func (j *Job) EventsContext(ctx context.Context) <-chan Event {
	out := make(chan Event, 16)
	go func() {
		defer close(out)
		i := 0
		for {
			j.mu.Lock()
			for i < len(j.events) {
				ev := j.events[i]
				i++
				j.mu.Unlock()
				select {
				case out <- ev:
				case <-ctx.Done():
					return
				}
				j.mu.Lock()
			}
			closed, update := j.closed, j.update
			j.mu.Unlock()
			if closed {
				return
			}
			select {
			case <-update:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// Snapshot reports the job's live state: progress counters and
// per-method grade tallies over the cells released so far (canonical
// order), plus the rendered tables once the job has succeeded.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:         j.id,
		State:      JobRunning,
		CellsDone:  j.cellsDone,
		TotalCells: j.total,
		Grades:     map[string]map[string]int{},
		Tables:     map[string]string{},
	}
	if j.closed {
		switch {
		case j.err == nil:
			s.State = JobSucceeded
		case errors.Is(j.err, context.Canceled):
			s.State = JobCanceled
		default:
			s.State = JobFailed
		}
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	for m, byGrade := range j.grades {
		cp := make(map[string]int, len(byGrade))
		for g, n := range byGrade {
			cp[g] = n
		}
		s.Grades[m] = cp
	}
	for name, text := range j.tables {
		s.Tables[name] = text
	}
	s.StoreHits = j.storeHits
	s.StoreMisses = j.storeMisses
	s.StorePutRetries = j.storeUsage.PutRetries
	s.StorePutDrops = j.storeUsage.PutDrops
	s.StoreDegraded = j.storeUsage.Degraded
	return s
}

// Snapshot is a point-in-time view of a job (see Job.Snapshot). Maps
// marshal with sorted keys, so equal snapshots serialize to equal
// bytes.
type Snapshot struct {
	ID         string                    `json:"id"`
	State      JobState                  `json:"state"`
	CellsDone  int                       `json:"cells_done"`
	TotalCells int                       `json:"total_cells"`
	Grades     map[string]map[string]int `json:"grades,omitempty"`
	Tables     map[string]string         `json:"tables,omitempty"`
	Error      string                    `json:"error,omitempty"`
	// StoreHits and StoreMisses count released cells replayed from
	// the client's result store versus simulated; both are zero (and
	// omitted) when the job ran without a store.
	StoreHits   int `json:"store_hits,omitempty"`
	StoreMisses int `json:"store_misses,omitempty"`
	// Store fault-tolerance accounting, populated when the run has
	// finished: write-backs retried, write-backs dropped after the
	// retry budget, and whether the run degraded to cache-bypass mode
	// because the store was unhealthy. A degraded job still succeeds
	// with the same results — these fields are how that shows up.
	StorePutRetries int  `json:"store_put_retries,omitempty"`
	StorePutDrops   int  `json:"store_put_drops,omitempty"`
	StoreDegraded   bool `json:"store_degraded,omitempty"`
}

// publish appends an event to the history and wakes subscribers.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	if cf, ok := ev.(CellFinished); ok {
		j.cellsDone++
		j.observer.CellDone(time.Now()) // nil-safe; feeds the /metrics sliding-window rate
		if j.storeEnabled {
			if cf.Cached {
				j.storeHits++
			} else {
				j.storeMisses++
			}
		}
		byGrade := j.grades[cf.Method]
		if byGrade == nil {
			byGrade = map[string]int{}
			j.grades[cf.Method] = byGrade
		}
		byGrade[cf.Outcome.Grade.String()]++
	}
	close(j.update)
	j.update = make(chan struct{})
	j.mu.Unlock()
}

// run executes the job; it owns the event stream end to end.
func (j *Job) run(ctx context.Context, hcfg harness.Config) {
	methods := make([]string, len(hcfg.Methods))
	for i, m := range hcfg.Methods {
		methods[i] = string(m)
	}
	j.publish(JobStarted{
		Job: j.id, Methods: methods, Problems: len(hcfg.Problems),
		Reps: hcfg.Reps, TotalCells: j.total,
	})

	hcfg.OnCell = func(ev harness.CellEvent) {
		j.publish(CellFinished{
			Index: ev.Index, Method: string(ev.Method), Rep: ev.Rep,
			Problem: ev.Problem, Outcome: ev.Outcome, Duration: ev.Duration,
			Cached: ev.Cached, Node: ev.Node,
		})
	}
	hcfg.OnGroup = func(m harness.Method, rep int) {
		j.publish(MethodRepDone{
			Method: string(m), Rep: rep, Reps: hcfg.Reps, Tasks: len(hcfg.Problems),
		})
	}

	res, err := harness.RunContext(ctx, hcfg)

	j.mu.Lock()
	if err == nil {
		j.exp = &Experiment{Results: res}
		j.tables["table1"] = j.exp.Table1()
		j.tables["table3"] = j.exp.Table3()
		j.storeUsage = res.Store
	}
	j.err = err
	exp := j.exp
	t1, t3 := j.tables["table1"], j.tables["table3"]
	hits, misses := j.storeHits, j.storeMisses
	usage := j.storeUsage
	j.mu.Unlock()

	if err == nil {
		j.publish(TableReady{Name: "table1", Text: t1})
		j.publish(TableReady{Name: "table3", Text: t3})
	}
	j.publish(JobDone{Results: exp, Err: err, StoreHits: hits, StoreMisses: misses, Store: usage})

	j.mu.Lock()
	j.closed = true
	close(j.update)
	j.update = make(chan struct{})
	j.mu.Unlock()
	close(j.done)
}
