package correctbench

import (
	"correctbench/internal/harness"
	"correctbench/internal/store"
)

// Store is the content-addressed evaluation-cell store a Client can
// be built over (WithStore): a cell — one (problem, method, rep)
// coordinate of an experiment grid — is a pure function of its
// content key (seed derivation, budgets, LLM/criterion names, dataset
// fingerprint, schema version), so the store replays previously
// finished cells instead of re-simulating them. Identical or
// overlapping specs become O(lookup), and a job killed mid-experiment
// resumes by resubmitting the same spec: the finished cells replay,
// only the remainder simulates, and the final tables are
// byte-identical to an uninterrupted run. Implementations are safe
// for concurrent use by any number of jobs.
type Store = store.Store

// StoreStats is a store's live counter snapshot (see Client.StoreStats
// and GET /v1/store/stats).
type StoreStats = store.Stats

// StoreUsage is one job's result-store accounting, including the
// fault-tolerance counters: write-back retries and drops, operations
// bypassed with the circuit breaker open, and whether the run
// degraded to cache-bypass mode. Surfaced on JobDone and (summarized)
// in Snapshot; a misbehaving store changes these counters, never a
// job's results or event bytes.
type StoreUsage = harness.StoreUsage

// NewMemoryStore returns an in-process LRU result store holding at
// most maxEntries cells (0: unbounded). It is the right choice for
// one-shot processes; use OpenDiskStore for persistence across
// restarts.
func NewMemoryStore(maxEntries int) Store { return store.NewMemory(maxEntries) }

// OpenDiskStore opens (creating if needed) a persistent result store
// rooted at dir: one append-safe, CRC-protected, fsync'd shard file
// per problem, with the index held in memory. Corrupt or torn records
// and stale-schema shards are skipped and counted, never fatal — see
// cmd/storectl for inspection and garbage collection.
func OpenDiskStore(dir string) (Store, error) { return store.Open(dir) }
