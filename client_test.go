package correctbench

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

var testProblems = []string{"mux2_w4", "cnt4", "halfadd", "dff"}

func TestSubmitSpecErrors(t *testing.T) {
	c := NewClient()
	ctx := context.Background()
	cases := []struct {
		name string
		spec ExperimentSpec
	}{
		{"unknown llm", ExperimentSpec{LLM: "gpt-9"}},
		{"unknown criterion", ExperimentSpec{Criterion: "99%-wrong"}},
		{"unknown problem", ExperimentSpec{Problems: []string{"nonexistent"}}},
		{"unknown method", ExperimentSpec{Methods: []string{"GuessBench"}}},
		{"negative budget", ExperimentSpec{MaxReboots: Int(-1)}},
		{"zero rtl group", ExperimentSpec{RTLGroupSize: Int(0)}},
	}
	for _, tc := range cases {
		if _, err := c.Submit(ctx, tc.spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if len(c.Jobs()) != 0 {
		t.Errorf("failed submissions registered jobs: %d", len(c.Jobs()))
	}
}

func TestSubmitPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewClient().Submit(ctx, ExperimentSpec{Problems: testProblems})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTaskSpecErrors(t *testing.T) {
	c := NewClient()
	ctx := context.Background()
	if _, err := c.GenerateTestbench(ctx, "adder4", TaskSpec{LLM: "gpt-9"}); err == nil {
		t.Error("bad LLM accepted")
	}
	if _, err := c.GenerateTestbench(ctx, "adder4", TaskSpec{Criterion: "99%-wrong"}); err == nil {
		t.Error("bad criterion accepted")
	}
	if _, err := c.GenerateTestbench(ctx, "nonexistent", TaskSpec{}); err == nil {
		t.Error("bad problem accepted")
	}
	if _, err := c.GenerateTestbench(ctx, "adder4", TaskSpec{RTLGroupSize: Int(0)}); err == nil {
		t.Error("zero RTL group accepted")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.GenerateTestbench(cancelled, "adder4", TaskSpec{Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled generate err = %v, want context.Canceled", err)
	}
}

// TestJobCancelMidRun is the tentpole's cancellation guarantee: a
// mid-run Cancel stops the workers promptly and Wait returns
// context.Canceled.
func TestJobCancelMidRun(t *testing.T) {
	c := NewClient()
	job, err := c.Submit(context.Background(), ExperimentSpec{
		Seed: 5, Reps: 20, Problems: testProblems, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel as soon as the first cell lands — with 240 cells pending
	// the job cannot have finished.
	events := job.Events()
	for ev := range events {
		if _, ok := ev.(CellFinished); ok {
			job.Cancel()
			break
		}
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	_, err = job.Wait(waitCtx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	t.Logf("cancel propagated in %v", time.Since(start))
	// The remaining events must drain and terminate with JobDone.
	var last Event
	for ev := range events {
		last = ev
	}
	done, ok := last.(JobDone)
	if !ok {
		t.Fatalf("stream ended with %T, want JobDone", last)
	}
	if !errors.Is(done.Err, context.Canceled) {
		t.Errorf("JobDone.Err = %v, want context.Canceled", done.Err)
	}
	if s := job.Snapshot(); s.State != JobCanceled {
		t.Errorf("state = %s, want %s", s.State, JobCanceled)
	}
}

// collectEvents runs a job to completion and returns its full event
// history.
func collectEvents(t *testing.T, workers int) []Event {
	t.Helper()
	job, err := NewClient().Submit(context.Background(), ExperimentSpec{
		Seed: 9, Reps: 2, Problems: testProblems, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []Event
	for ev := range job.Events() {
		out = append(out, ev)
	}
	return out
}

// TestEventStreamDeterminism asserts the tentpole's reproducibility
// guarantee: Workers:1 and Workers:8 stream byte-identical event
// sequences (Duration, wall clock, is the only exempt field and is
// zeroed before marshaling).
func TestEventStreamDeterminism(t *testing.T) {
	marshalAll := func(events []Event) []byte {
		var buf bytes.Buffer
		for _, ev := range events {
			if cf, ok := ev.(CellFinished); ok {
				cf.Duration = 0
				ev = cf
			}
			if js, ok := ev.(JobStarted); ok {
				js.Job = "" // IDs are per-client, not part of the determinism contract
				ev = js
			}
			line, err := MarshalEvent(ev)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}
	seq := marshalAll(collectEvents(t, 1))
	par := marshalAll(collectEvents(t, 8))
	if !bytes.Equal(seq, par) {
		t.Fatalf("event streams differ between Workers:1 and Workers:8:\n--- w1 ---\n%s\n--- w8 ---\n%s", seq, par)
	}
	// Sanity: the stream has the full shape.
	events := collectEvents(t, 8)
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.Type()]++
	}
	want := map[string]int{
		"job_started": 1, "cell_finished": 3 * 2 * len(testProblems),
		"method_rep_done": 3 * 2, "table_ready": 2, "job_done": 1,
	}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("event counts = %v, want %v", counts, want)
	}
	// Cells arrive in canonical index order.
	idx := 0
	for _, ev := range events {
		if cf, ok := ev.(CellFinished); ok {
			if cf.Index != idx {
				t.Fatalf("cell index %d out of order (want %d)", cf.Index, idx)
			}
			idx++
		}
	}
}

// TestJobMatchesLegacyFacade pins that the job path reproduces the
// legacy blocking facade bit for bit (Table I unchanged through the
// new API).
func TestJobMatchesLegacyFacade(t *testing.T) {
	job, err := NewClient().Submit(context.Background(), ExperimentSpec{
		Seed: 4, Reps: 1, Problems: testProblems,
	})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := RunExperiment(ExperimentConfig{Seed: 4, Reps: 1, ProblemNames: testProblems})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := exp.Table1(), legacy.Table1(); got != want {
		t.Errorf("Table I differs between Job API and legacy facade:\n%s\n---\n%s", got, want)
	}
	if got, want := exp.Table3(), legacy.Table3(); got != want {
		t.Errorf("Table III differs between Job API and legacy facade")
	}
}

func TestSnapshotLifecycle(t *testing.T) {
	job, err := NewClient().Submit(context.Background(), ExperimentSpec{
		Seed: 2, Reps: 1, Problems: []string{"halfadd", "dff"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := job.Snapshot()
	if s.State != JobSucceeded {
		t.Errorf("state = %s", s.State)
	}
	if s.CellsDone != s.TotalCells || s.TotalCells != 6 {
		t.Errorf("cells = %d/%d, want 6/6", s.CellsDone, s.TotalCells)
	}
	if s.Tables["table1"] == "" {
		t.Error("snapshot missing table1")
	}
	total := 0
	for _, byGrade := range s.Grades {
		for _, n := range byGrade {
			total += n
		}
	}
	if total != 6 {
		t.Errorf("grade tally = %d, want 6", total)
	}
}

// TestExplicitZeroBudgets exercises the pointer-or-sentinel fix: an
// explicit zero disables corrections/reboots (impossible with the
// legacy Options struct), while the legacy struct's zero value keeps
// the paper defaults.
func TestExplicitZeroBudgets(t *testing.T) {
	opt, err := TaskSpec{MaxCorrections: Int(0), MaxReboots: Int(0)}.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if opt.MaxCorrections != 0 || opt.MaxReboots != 0 {
		t.Fatalf("explicit zeros not honored: %d/%d", opt.MaxCorrections, opt.MaxReboots)
	}
	legacy, err := Options{}.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if legacy.MaxCorrections != 3 || legacy.MaxReboots != 10 || legacy.NR != 20 {
		t.Fatalf("legacy zero values must keep paper defaults, got %d/%d/%d",
			legacy.MaxCorrections, legacy.MaxReboots, legacy.NR)
	}

	// A no-correction, no-reboot run can never correct or reboot.
	res, err := NewClient().GenerateTestbench(context.Background(), "cnt8", TaskSpec{
		Seed: 3, MaxCorrections: Int(0), MaxReboots: Int(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrections != 0 || res.Reboots != 0 {
		t.Errorf("ablation run acted anyway: corrections=%d reboots=%d", res.Corrections, res.Reboots)
	}
}

// TestRetentionCaps checks that a long-lived client stays bounded:
// old finished jobs and old evaluator seeds are evicted, while
// running jobs are never dropped.
func TestRetentionCaps(t *testing.T) {
	c := NewClient()
	mkJob := func(id string, finished bool) *Job {
		j := &Job{id: id, done: make(chan struct{}), update: make(chan struct{})}
		if finished {
			close(j.done)
		}
		return j
	}
	running := mkJob("exp-running", false)
	c.jobs[running.id] = running
	c.order = append(c.order, running.id)
	for i := 0; i < maxRetainedJobs+10; i++ {
		id := string(rune('a'+i%26)) + string(rune('0'+i/26))
		c.jobs[id] = mkJob(id, true)
		c.order = append(c.order, id)
		c.pruneJobsLocked()
	}
	if len(c.order) != maxRetainedJobs || len(c.jobs) != maxRetainedJobs {
		t.Errorf("retained %d/%d jobs, want %d", len(c.order), len(c.jobs), maxRetainedJobs)
	}
	if c.Job("exp-running") == nil {
		t.Error("running job was evicted")
	}

	for seed := int64(0); seed < int64(maxRetainedEvaluators)+5; seed++ {
		c.evaluator(seed)
	}
	if len(c.evals) != maxRetainedEvaluators {
		t.Errorf("retained %d evaluators, want %d", len(c.evals), maxRetainedEvaluators)
	}
	// Re-requesting a seed yields the same instance while cached.
	e := c.evaluator(99)
	if c.evaluator(99) != e {
		t.Error("evaluator cache not reused")
	}
}

// TestNameListsStableOrder pins the documented orderings and their
// round trips, the byte-stability contract of GET /v1/llms and
// /v1/criteria.
func TestNameListsStableOrder(t *testing.T) {
	wantLLMs := []string{"gpt-4o", "claude-3.5-sonnet", "gpt-4o-mini"}
	if got := LLMNames(); !reflect.DeepEqual(got, wantLLMs) {
		t.Errorf("LLMNames() = %v, want %v", got, wantLLMs)
	}
	wantCrit := []string{"100%-wrong", "70%-wrong", "50%-wrong"}
	if got := CriterionNames(); !reflect.DeepEqual(got, wantCrit) {
		t.Errorf("CriterionNames() = %v, want %v", got, wantCrit)
	}
	// Round trip: every listed name resolves.
	for _, name := range LLMNames() {
		if _, err := (TaskSpec{LLM: name}).resolve(); err != nil {
			t.Errorf("LLM %q does not round-trip: %v", name, err)
		}
	}
	for _, name := range CriterionNames() {
		if _, err := (TaskSpec{Criterion: name}).resolve(); err != nil {
			t.Errorf("criterion %q does not round-trip: %v", name, err)
		}
	}
}

// TestEventWireRoundTrip checks MarshalEvent/UnmarshalEvent are
// inverses for every event type.
func TestEventWireRoundTrip(t *testing.T) {
	events := []Event{
		JobStarted{Job: "exp-1", Methods: []string{"CorrectBench"}, Problems: 4, Reps: 2, TotalCells: 8},
		CellFinished{Index: 3, Method: "AutoBench", Rep: 1, Problem: "cnt8",
			Outcome: TaskOutcome{Problem: "cnt8", Grade: Eval2, TokensIn: 10, TokensOut: 5}, Duration: 2 * time.Millisecond},
		MethodRepDone{Method: "Baseline", Rep: 0, Reps: 2, Tasks: 4},
		TableReady{Name: "table1", Text: "...table..."},
		JobDone{},
	}
	for _, ev := range events {
		line, err := MarshalEvent(ev)
		if err != nil {
			t.Fatalf("%T: %v", ev, err)
		}
		back, err := UnmarshalEvent(line)
		if err != nil {
			t.Fatalf("%T: %v", ev, err)
		}
		if back.Type() != ev.Type() {
			t.Errorf("round trip changed type: %s -> %s", ev.Type(), back.Type())
		}
		line2, err := MarshalEvent(back)
		if err != nil {
			t.Fatalf("%T re-marshal: %v", back, err)
		}
		if !bytes.Equal(line, line2) {
			t.Errorf("%T: wire form not stable:\n%s\n%s", ev, line, line2)
		}
	}
	// Outcome fields survive (Problem/Kind of the outcome are carried
	// by the event envelope, not the wire outcome).
	back, err := UnmarshalEvent([]byte(`{"type":"cell_finished","index":1,"method":"AutoBench","rep":0,"problem":"cnt8","duration_ms":1.5,"outcome":{"grade":"Eval1","kind":"CMB","tokens_in":7,"tokens_out":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	cf := back.(CellFinished)
	if cf.Outcome.Grade != Eval1 || cf.Outcome.TokensIn != 7 {
		t.Errorf("outcome lost in round trip: %+v", cf.Outcome)
	}
}
