package correctbench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// loadJobResult is what one concurrent streaming job observed.
type loadJobResult struct {
	cells     []int // cell indices in arrival order
	firstCell time.Time
	done      time.Time
	err       error
}

// streamLoadJob submits one streaming experiment and drains it,
// recording cell arrival order and timing.
func streamLoadJob(base string, spec ExperimentSpec) loadJobResult {
	var res loadJobResult
	resp := func() *http.Response {
		r, err := postStream(base, spec)
		if err != nil {
			res.err = err
		}
		return r
	}()
	if res.err != nil {
		return res
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		res.err = fmt.Errorf("submit status %s", resp.Status)
		return res
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	finished := false
	for sc.Scan() {
		ev, err := UnmarshalEvent(sc.Bytes())
		if err != nil {
			res.err = err
			return res
		}
		switch e := ev.(type) {
		case CellFinished:
			if len(res.cells) == 0 {
				res.firstCell = time.Now()
			}
			res.cells = append(res.cells, e.Index)
		case JobDone:
			if e.Err != nil {
				res.err = fmt.Errorf("job failed: %v", e.Err)
				return res
			}
			finished = true
		}
	}
	if err := sc.Err(); err != nil {
		res.err = err
		return res
	}
	if !finished {
		res.err = fmt.Errorf("stream ended without job_done")
		return res
	}
	res.done = time.Now()
	return res
}

func postStream(base string, spec ExperimentSpec) (*http.Response, error) {
	raw, err := json.Marshal(struct {
		ExperimentSpec
		Stream bool `json:"stream"`
	}{spec, true})
	if err != nil {
		return nil, err
	}
	return http.Post(base+"/v1/experiments", "application/json", bytes.NewReader(raw))
}

// TestLoadConcurrentStreamingJobs is the CI load harness: N concurrent
// streaming jobs against one server sharing one result store, run once
// over the in-process pool and once over an in-process remote fleet.
// Every job must receive exactly its own cells in canonical order
// (zero lost, zero duplicated, zero cross-talk), no job may starve
// while others finish, the shared store must end up holding every
// simulated cell, and a warm resubmit must replay entirely from it.
func TestLoadConcurrentStreamingJobs(t *testing.T) {
	const jobs = 4
	specFor := func(i int) ExperimentSpec {
		return ExperimentSpec{
			Seed: 101 + int64(i), Reps: 1, Workers: 4,
			Problems: []string{"halfadd", "dff"},
		}
	}
	const cellsPerJob = 2 * 3

	run := func(t *testing.T, extra ...ClientOption) {
		st := NewMemoryStore(0)
		c := NewClient(append([]ClientOption{WithStore(st)}, extra...)...)
		ts := httptest.NewServer(NewServer(c))
		t.Cleanup(ts.Close)

		start := time.Now()
		results := make([]loadJobResult, jobs)
		var wg sync.WaitGroup
		for i := 0; i < jobs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i] = streamLoadJob(ts.URL, specFor(i))
			}(i)
		}
		wg.Wait()

		var earliestDone, latestDone time.Time
		for i, r := range results {
			if r.err != nil {
				t.Fatalf("job %d: %v", i, r.err)
			}
			if len(r.cells) != cellsPerJob {
				t.Fatalf("job %d received %d cells, want %d (lost or duplicated cells)", i, len(r.cells), cellsPerJob)
			}
			for j, idx := range r.cells {
				if idx != j {
					t.Fatalf("job %d cell %d has index %d: canonical order violated", i, j, idx)
				}
			}
			if earliestDone.IsZero() || r.done.Before(earliestDone) {
				earliestDone = r.done
			}
			if r.done.After(latestDone) {
				latestDone = r.done
			}
		}
		// Fairness: every job must have streamed its first cell by the
		// time the fastest job finished (with a quarter-of-the-run slack
		// for per-seed fixture warm-up) — concurrent jobs make progress
		// together instead of queueing behind each other. Serialized
		// execution puts the last job's first cell far past this bound.
		slack := latestDone.Sub(start) / 4
		for i, r := range results {
			if r.firstCell.After(earliestDone.Add(slack)) {
				t.Errorf("job %d starved: first cell at %v, but another job had fully finished by %v",
					i, r.firstCell.Sub(start), earliestDone.Sub(start))
			}
		}

		// Zero lost cells, store-side: distinct seeds mean distinct cell
		// keys, so the shared store must hold every simulated cell.
		stats := st.Stats()
		if want := uint64(jobs * cellsPerJob); stats.Puts != want || stats.Entries != jobs*cellsPerJob {
			t.Errorf("store holds %d entries after %d puts, want %d/%d", stats.Entries, stats.Puts, jobs*cellsPerJob, want)
		}

		// Resume-by-spec through the same executor: a warm resubmit
		// replays every cell.
		job, _, _ := drainJob(t, c, specFor(0))
		if snap := job.Snapshot(); snap.StoreHits != cellsPerJob || snap.StoreMisses != 0 {
			t.Errorf("warm resubmit: hits=%d misses=%d, want %d/0", snap.StoreHits, snap.StoreMisses, cellsPerJob)
		}
	}

	t.Run("local-pool", func(t *testing.T) { run(t) })
	t.Run("remote-fleet", func(t *testing.T) {
		fleet := startFleet(t, 2, nil)
		run(t, WithExecutor(fleet.executor(t)))
	})
}
