package correctbench

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"correctbench/internal/store"
)

// marshalNormalized renders an event stream to its wire bytes with
// the operational fields (job ID, Duration) normalized — exactly the
// reproducibility contract: everything else must be byte-identical.
func marshalNormalized(t *testing.T, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, ev := range events {
		if cf, ok := ev.(CellFinished); ok {
			cf.Duration = 0
			ev = cf
		}
		if js, ok := ev.(JobStarted); ok {
			js.Job = ""
			ev = js
		}
		line, err := MarshalEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func drainJob(t *testing.T, c *Client, spec ExperimentSpec) (*Job, []Event, *Experiment) {
	t.Helper()
	job, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for ev := range job.Events() {
		events = append(events, ev)
	}
	exp, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return job, events, exp
}

// TestWarmRerunFullyCached is the tentpole acceptance criterion: a
// fully warm rerun of an experiment replays every cell from the store
// (hit counter == cell count, zero simulated), its rendered tables
// are byte-identical to the cold run's, and the wire event stream —
// after the contract's two operational normalizations — is
// byte-identical too, at any worker count.
func TestWarmRerunFullyCached(t *testing.T) {
	dir := t.TempDir()
	spec := ExperimentSpec{Seed: 31, Reps: 1, Problems: testProblems, Workers: 4}
	total := 3 * len(testProblems)

	st, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewClient(WithStore(st))
	coldJob, coldEvents, coldExp := drainJob(t, cold, spec)
	if s := coldJob.Snapshot(); s.StoreHits != 0 || s.StoreMisses != total {
		t.Fatalf("cold hits/misses = %d/%d, want 0/%d", s.StoreHits, s.StoreMisses, total)
	}
	if err := cold.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk in a fresh client (fresh evaluator caches too):
	// everything the warm run needs must come from the shards.
	st2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s := st2.Stats(); s.Entries != total {
		t.Fatalf("reopened store holds %d cells, want %d", s.Entries, total)
	}
	warm := NewClient(WithStore(st2))
	defer warm.Close(context.Background())
	warmSpec := spec
	warmSpec.Workers = 1 // worker count must not matter, warm or cold
	warmJob, warmEvents, warmExp := drainJob(t, warm, warmSpec)

	if s := warmJob.Snapshot(); s.StoreHits != total || s.StoreMisses != 0 {
		t.Fatalf("warm run simulated cells: hits=%d misses=%d, want %d/0", s.StoreHits, s.StoreMisses, total)
	}
	if coldExp.Table1() != warmExp.Table1() || coldExp.Table3() != warmExp.Table3() {
		t.Error("warm tables differ from cold tables")
	}
	if !bytes.Equal(marshalNormalized(t, coldEvents), marshalNormalized(t, warmEvents)) {
		t.Error("warm wire event stream differs from cold")
	}
	// Cached cells replay with zero Duration and the Cached mark.
	for _, ev := range warmEvents {
		if cf, ok := ev.(CellFinished); ok {
			if !cf.Cached || cf.Duration != 0 {
				t.Fatalf("warm cell %d: cached=%v duration=%v", cf.Index, cf.Cached, cf.Duration)
			}
		}
	}
	// JobDone carries the counters (typed, not serialized).
	done := warmEvents[len(warmEvents)-1].(JobDone)
	if done.StoreHits != total || done.StoreMisses != 0 {
		t.Errorf("JobDone counters = %d/%d, want %d/0", done.StoreHits, done.StoreMisses, total)
	}
}

// TestCrashRecoveryResume is the resume acceptance criterion: cancel
// a job mid-experiment, reopen the store as a crashed-and-restarted
// process would, resubmit the identical spec, and the job completes
// with only the missing cells simulated and a Table I byte-identical
// to an uncached run.
func TestCrashRecoveryResume(t *testing.T) {
	dir := t.TempDir()
	// Reps 4 over 4 problems = 48 cells: enough runway that cancelling
	// after the third cell always leaves unfinished work.
	spec := ExperimentSpec{Seed: 13, Reps: 4, Problems: testProblems, Workers: 2}
	total := 3 * 4 * len(testProblems)

	st, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewClient(WithStore(st))
	job, err := c1.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for ev := range job.Events() {
		if _, ok := ev.(CellFinished); ok {
			if seen++; seen == 3 {
				job.Cancel() // the "crash"
				break
			}
		}
	}
	if _, err := job.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if err := c1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the store from disk. In-flight cells may have
	// landed after the cancel; whatever is on disk is what resumes.
	st2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	persisted := st2.Stats().Entries
	if persisted < 3 || persisted >= total {
		t.Fatalf("persisted %d cells, want a strict mid-run subset >= 3 of %d", persisted, total)
	}

	c2 := NewClient(WithStore(st2))
	defer c2.Close(context.Background())
	resumed, _, resumedExp := drainJob(t, c2, spec)
	s := resumed.Snapshot()
	if s.StoreHits != persisted {
		t.Errorf("resume replayed %d cells, want the %d persisted", s.StoreHits, persisted)
	}
	if s.StoreMisses != total-persisted {
		t.Errorf("resume simulated %d cells, want only the missing %d", s.StoreMisses, total-persisted)
	}

	// The resumed tables must be byte-identical to a never-interrupted,
	// never-cached run of the same spec.
	_, _, refExp := drainJob(t, NewClient(), spec)
	if resumedExp.Table1() != refExp.Table1() {
		t.Errorf("resumed Table I differs from uncached run:\n--- resumed ---\n%s\n--- uncached ---\n%s",
			resumedExp.Table1(), refExp.Table1())
	}
	if resumedExp.Table3() != refExp.Table3() {
		t.Error("resumed Table III differs from uncached run")
	}
}

// TestNoStoreOptOut pins ExperimentSpec.NoStore: the job neither
// reads nor writes the client's store.
func TestNoStoreOptOut(t *testing.T) {
	c := NewClient(WithStore(NewMemoryStore(0)))
	defer c.Close(context.Background())
	spec := ExperimentSpec{Seed: 2, Reps: 1, Problems: []string{"halfadd"}, NoStore: true}
	job, _, _ := drainJob(t, c, spec)
	if s := job.Snapshot(); s.StoreHits != 0 || s.StoreMisses != 0 {
		t.Errorf("NoStore job reported store counters: %d/%d", s.StoreHits, s.StoreMisses)
	}
	stats, ok := c.StoreStats()
	if !ok {
		t.Fatal("StoreStats not ok on a store-backed client")
	}
	if stats.Entries != 0 || stats.Puts != 0 {
		t.Errorf("NoStore job wrote to the store: %+v", stats)
	}

	// And a plain client reports no store at all.
	if _, ok := NewClient().StoreStats(); ok {
		t.Error("StoreStats ok without a store")
	}
}

// TestConcurrentJobsSharedStore races several jobs — two identical,
// one disjoint — against one disk store (the correctbenchd serving
// pattern). Run under -race in CI; correctness assertions here are
// that both identical jobs land the same tables and the store ends up
// with exactly the union of cells.
func TestConcurrentJobsSharedStore(t *testing.T) {
	st, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(WithStore(st))
	defer c.Close(context.Background())

	specA := ExperimentSpec{Seed: 5, Reps: 1, Problems: []string{"halfadd", "dff"}, Workers: 2}
	specB := ExperimentSpec{Seed: 5, Reps: 1, Problems: []string{"mux2_w4"}, Workers: 2}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		tables []string
	)
	for _, spec := range []ExperimentSpec{specA, specA, specB} {
		wg.Add(1)
		go func(spec ExperimentSpec) {
			defer wg.Done()
			job, err := c.Submit(context.Background(), spec)
			if err != nil {
				t.Error(err)
				return
			}
			exp, err := job.Wait(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			if len(spec.Problems) == 2 {
				mu.Lock()
				tables = append(tables, exp.Table1())
				mu.Unlock()
			}
		}(spec)
	}
	wg.Wait()
	if len(tables) != 2 || tables[0] != tables[1] {
		t.Errorf("identical concurrent jobs disagreed (%d tables)", len(tables))
	}
	// Union: 2*3 cells from specA (shared by both copies) + 1*3 from
	// specB. Overlapping puts are deduped by the store.
	if s := st.Stats(); s.Entries != 9 {
		t.Errorf("store entries = %d, want 9", s.Entries)
	}
}

// TestClientClose pins the shutdown contract correctbenchd relies on:
// Close cancels in-flight jobs, waits for them, and closes the store.
func TestClientClose(t *testing.T) {
	st := NewMemoryStore(0)
	c := NewClient(WithStore(st))
	job, err := c.Submit(context.Background(), ExperimentSpec{
		Seed: 1, Reps: 20, Problems: testProblems, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one cell land so the close has write-backs to flush.
	for ev := range job.Events() {
		if _, ok := ev.(CellFinished); ok {
			break
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Close(ctx); err != nil {
		t.Fatalf("Close = %v", err)
	}
	if _, err := job.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("job after Close: %v, want context.Canceled", err)
	}
	// The store is closed: puts fail, gets miss.
	if err := st.Put(store.Key{1}, store.Outcome{Problem: "x"}); err == nil {
		t.Error("store accepted a put after Close")
	}
}
