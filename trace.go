package correctbench

import "correctbench/internal/obs"

// Tracing surface: every job collects, by default, one span tree per
// experiment cell covering its whole execution path — queue_wait,
// store_lookup, dispatch and net_roundtrip (fleet runs), simulate with
// sim_elaborate/sim_compile/sim_run sub-spans, grade, and
// store_writeback. Span IDs are deterministic (derived from the cell's
// content address, harness.CellKey); the durations are wall clock.
//
// Traces are operational metadata in exactly the sense of
// CellFinished.Duration: they never appear in the event stream, the
// tables, or the result store, so a traced run and a NoTrace run are
// byte-identical everywhere the reproducibility contract applies.
// Read them through Job.Trace, GET /v1/experiments/{id}/trace
// (NDJSON, one CellTrace per line), or cmd/traceview.

// CellTrace is one cell's span tree: identity (canonical index,
// method, rep, problem, content address), placement (Node, Cached),
// and the spans in start order.
type CellTrace = obs.CellTrace

// TraceSpan is one phase span of a CellTrace: a deterministic ID,
// the parent span's ID (empty for roots), the phase name, and the
// start offset / duration in microseconds relative to the job run's
// trace epoch.
type TraceSpan = obs.Span

// PhaseStats is one per-(phase, node) latency summary: observation
// count, total microseconds, and interpolated p50/p90/p99. The
// /metrics phase_latency_us summaries are rendered from these rows.
type PhaseStats = obs.PhaseStats

// Trace returns the per-cell span trees collected so far, sorted by
// canonical cell index. Safe to call while the job runs (it reports
// the cells released up to now) and after it finishes (the full
// grid). Returns nil when the job was submitted with NoTrace.
func (j *Job) Trace() []CellTrace {
	return j.trace.Cells()
}

// traced reports whether the job collects traces (NoTrace unset).
func (j *Job) traced() bool { return j.trace != nil }

// PhaseLatencies returns the client's aggregated phase-latency
// summary rows — every traced cell of every job this client ran,
// keyed by (phase, node) and sorted — the same data /metrics exposes
// as phase_latency_us.
func (c *Client) PhaseLatencies() []PhaseStats {
	return c.obs.Snapshot()
}
