package correctbench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"correctbench/internal/llm"
	"correctbench/internal/mutate"
	"correctbench/internal/testbench"
	"correctbench/internal/validator"
	"correctbench/internal/verilog"
)

// RSMatrixSpec configures the Fig. 4 reproduction: RS matrices for a
// correct testbench and for one with an injected checker fault.
type RSMatrixSpec struct {
	Problem string `json:"problem"`
	Seed    int64  `json:"seed"`
	// RTLGroupSize is N_R (nil: paper's 20).
	RTLGroupSize *int `json:"rtl_group_size,omitempty"`
	// Workers bounds concurrent checker-fault probes (0: all CPUs;
	// the same fault is found either way).
	Workers int `json:"workers,omitempty"`
}

// RSMatrixReport is the rendered Fig. 4 panel pair.
type RSMatrixReport struct {
	// Clean is the rendered matrix and per-criterion verdicts of the
	// correct testbench.
	Clean string `json:"clean"`
	// Fault describes the injected checker fault; empty when no
	// observable fault was found within the probe budget.
	Fault string `json:"fault,omitempty"`
	// Wrong is the rendered panel for the faulty testbench ("" when
	// Fault is empty).
	Wrong string `json:"wrong,omitempty"`
}

// RSMatrix reproduces Fig. 4 for one task. Candidate checker faults
// are probed in waves of one attempt per worker, stopping at the
// first wave containing a hit; each attempt is an independent seeded
// derivation, so the winner is the same for any worker count.
func (c *Client) RSMatrix(ctx context.Context, spec RSMatrixSpec) (*RSMatrixReport, error) {
	probs, err := resolveProblems([]string{spec.Problem})
	if err != nil {
		return nil, err
	}
	p := probs[0]
	if err := checkNR(spec.RTLGroupSize); err != nil {
		return nil, err
	}
	nr := 20
	if spec.RTLGroupSize != nil {
		nr = *spec.RTLGroupSize
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	prof := llm.GPT4o()
	var acct llm.Accountant
	group, err := validator.GenerateRTLGroup(p, prof, nr, rng, &acct)
	if err != nil {
		return nil, err
	}
	scs, err := testbench.GenerateScenarios(p, rng, testbench.Coverage{Scenarios: 10, Steps: 10, Corners: true})
	if err != nil {
		return nil, err
	}

	clean := &testbench.Testbench{Problem: p, Scenarios: scs, CheckerSource: p.Source, CheckerTop: p.Top, CheckerSticky: -1}
	clean.DriverSource = testbench.EmitDriver(clean)
	rep := &RSMatrixReport{}
	if rep.Clean, err = renderPanel(ctx, "CORRECT testbench (golden checker)", clean, group); err != nil {
		return nil, err
	}

	golden, err := p.Module()
	if err != nil {
		return nil, err
	}
	const attempts = 50
	type found struct {
		tb   *testbench.Testbench
		muts []mutate.Mutation
	}
	w := spec.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	probe := func(attempt int64) *found {
		plan := mutate.NewPlan(golden, rand.New(rand.NewSource(spec.Seed+attempt)), 1)
		mod, muts := plan.Build(golden)
		if len(muts) == 0 {
			return nil
		}
		tb := &testbench.Testbench{Problem: p, Scenarios: scs, CheckerSource: verilog.PrintModule(mod), CheckerTop: p.Top, CheckerSticky: -1}
		tb.DriverSource = testbench.EmitDriver(tb)
		if res, err := tb.RunAgainstSourceContext(ctx, p.Source, p.Top); err != nil || res.Pass() {
			return nil // fault not observable (or the probe was cancelled)
		}
		return &found{tb: tb, muts: muts}
	}
	for base := int64(0); base < attempts; base += int64(w) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := base + int64(w)
		if end > attempts {
			end = attempts
		}
		wave := make([]*found, end-base)
		var wg sync.WaitGroup
		for i := range wave {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				wave[i] = probe(base + int64(i))
			}(i)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, f := range wave {
			if f == nil {
				continue
			}
			rep.Fault = fmt.Sprintf("%v", f.muts)
			if rep.Wrong, err = renderPanel(ctx, "WRONG testbench", f.tb, group); err != nil {
				return nil, err
			}
			return rep, nil
		}
	}
	return rep, nil
}

// renderPanel renders one Fig. 4 panel: the RS matrix plus every
// criterion's verdict.
func renderPanel(ctx context.Context, title string, tb *testbench.Testbench, group []validator.RTLCandidate) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", title)
	v := &validator.Validator{Criterion: validator.Wrong70}
	m, ok, err := v.BuildMatrixContext(ctx, tb, group)
	if err != nil {
		return "", err
	}
	if !ok {
		sb.WriteString("testbench itself is broken\n")
		return sb.String(), nil
	}
	sb.WriteString(m.Render())
	for _, c := range validator.Criteria() {
		rep := (&validator.Validator{Criterion: c}).Judge(m)
		fmt.Fprintf(&sb, "%-12s verdict: correct=%v wrong=%v uncertain=%v\n", c.Name, rep.Correct, rep.Wrong, rep.Uncertain)
	}
	return sb.String(), nil
}
