package correctbench

import (
	"strings"
	"testing"
)

func TestProblemsAndLookup(t *testing.T) {
	if len(Problems()) != 156 {
		t.Fatalf("problems = %d", len(Problems()))
	}
	if ProblemByName("shift18") == nil || ProblemByName("bogus") != nil {
		t.Error("lookup broken")
	}
}

func TestGenerateAndGrade(t *testing.T) {
	res, err := GenerateTestbench("adder4", Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Testbench == nil || res.TokensIn == 0 {
		t.Fatal("incomplete result")
	}
	g, err := Grade(res.Testbench, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g < Eval0 {
		t.Errorf("grade = %s", g)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := GenerateTestbench("adder4", Options{LLM: "gpt-9"}); err == nil {
		t.Error("bad LLM accepted")
	}
	if _, err := GenerateTestbench("adder4", Options{Criterion: "99%-wrong"}); err == nil {
		t.Error("bad criterion accepted")
	}
	if _, err := GenerateTestbench("nonexistent", Options{}); err == nil {
		t.Error("bad problem accepted")
	}
}

func TestNewProblemAndRun(t *testing.T) {
	src := `module xor3(
    input a,
    input b,
    input c,
    output y
);
    assign y = a ^ b ^ c;
endmodule
`
	p, err := NewProblem("xor3", "CMB", "A 3-input XOR gate: output y is the XOR of inputs a, b and c.", src, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GenerateTestbenchFor(p, Options{Seed: 2, MaxReboots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Testbench.Problem.Name != "xor3" {
		t.Error("wrong problem attached")
	}
	if _, err := NewProblem("bad", "CMB", "spec", "module bad(", "", 1); err == nil {
		t.Error("invalid golden source accepted")
	}
	if _, err := NewProblem("bad", "XYZ", "spec", src, "", 1); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestRunExperimentSubset(t *testing.T) {
	exp, err := RunExperiment(ExperimentConfig{
		Seed: 4, Reps: 1,
		ProblemNames: []string{"mux2_w4", "cnt4", "halfadd", "dff"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := exp.Table1()
	if !strings.Contains(out, "CorrectBench") {
		t.Error("table missing method")
	}
}

func TestNameLists(t *testing.T) {
	if len(LLMNames()) != 3 || len(CriterionNames()) != 3 {
		t.Errorf("lists wrong: %v %v", LLMNames(), CriterionNames())
	}
}
