package correctbench

// Ablation benchmarks for the design choices DESIGN.md calls out:
// the size of the imperfect-RTL group (N_R = 20 in the paper) and the
// 25%-green-row override of the 70%-wrong criterion. Each benchmark
// reports validation accuracy on a small labeled corpus through
// b.ReportMetric, so `go test -bench=Ablation` doubles as an ablation
// study.

import (
	"math/rand"
	"testing"

	"correctbench/internal/autobench"
	"correctbench/internal/dataset"
	"correctbench/internal/llm"
	"correctbench/internal/testbench"
	"correctbench/internal/validator"
)

// ablationCorpus builds labeled testbenches and per-task RTL groups.
type ablationCorpus struct {
	entries []ablationEntry
}

type ablationEntry struct {
	tb      *testbench.Testbench
	group   []validator.RTLCandidate
	correct bool
}

func buildAblationCorpus(b *testing.B, nr int, seed int64) *ablationCorpus {
	b.Helper()
	prof := llm.GPT4o()
	gen := &autobench.AutoBench{Profile: prof}
	corpus := &ablationCorpus{}
	names := []string{"adder8", "alu4", "cnt8", "det101", "sipo8", "prio_enc8", "timer8", "mux4_w4"}
	for pi, name := range names {
		p := dataset.ByName(name)
		rng := rand.New(rand.NewSource(seed + int64(pi)*31))
		var acct llm.Accountant
		group, err := validator.GenerateRTLGroup(p, prof, nr, rng, &acct)
		if err != nil {
			b.Fatal(err)
		}
		goldenDesign, err := p.Elaborate()
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 4; k++ {
			trait := prof.SampleTrait(p.Difficulty, p.Kind == dataset.SEQ, rng)
			tb, err := gen.Generate(p, trait, rng, &acct)
			if err != nil {
				b.Fatal(err)
			}
			e := ablationEntry{tb: tb, group: group}
			if tb.SyntaxOK() {
				if res, err := tb.RunAgainstDesign(goldenDesign); err == nil && res.Pass() {
					e.correct = true
				}
			}
			corpus.entries = append(corpus.entries, e)
		}
	}
	return corpus
}

func (c *ablationCorpus) accuracy(crit validator.Criterion) float64 {
	v := &validator.Validator{Criterion: crit}
	hit := 0
	for _, e := range c.entries {
		rep := v.Validate(e.tb, e.group)
		if rep.Correct == e.correct {
			hit++
		}
	}
	return float64(hit) / float64(len(c.entries))
}

// BenchmarkAblationNRGroupSize sweeps the imperfect-RTL group size.
// The paper fixes N_R = 20; the sweep shows accuracy saturating as the
// group grows (columns become statistically reliable).
func BenchmarkAblationNRGroupSize(b *testing.B) {
	for _, nr := range []int{5, 10, 20, 40} {
		b.Run(itoa(nr), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				corpus := buildAblationCorpus(b, nr, int64(100+i))
				acc = corpus.accuracy(validator.Wrong70)
			}
			b.ReportMetric(acc*100, "val-acc-%")
		})
	}
}

// BenchmarkAblationGreenRowRule compares the shipped 70%-wrong
// criterion against the same threshold without the 25%-green-row
// override (the paper's motivation for the rule: without it, correct
// testbenches over buggy RTL groups are misflagged).
func BenchmarkAblationGreenRowRule(b *testing.B) {
	with := validator.Wrong70
	without := validator.Criterion{Name: "70%-no-green-row", WrongFrac: 0.7}
	for _, cfg := range []struct {
		name string
		crit validator.Criterion
	}{{"with-green-row", with}, {"without-green-row", without}} {
		b.Run(cfg.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				corpus := buildAblationCorpus(b, 20, int64(200+i))
				acc = corpus.accuracy(cfg.crit)
			}
			b.ReportMetric(acc*100, "val-acc-%")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
