package correctbench

import (
	"correctbench/internal/exec"
	"correctbench/internal/harness"
)

// CellExecutor re-exports the cell-execution strategy a Client can be
// built over (WithExecutor). An executor owes every cell of a job
// exactly one completion — in any order, on any node, possibly more
// than once internally — and the harness's ordered emitter turns those
// completions back into the canonical event stream. That split is why
// a fleet-executed job streams bytes identical to a single-process
// one: determinism lives in the cells and the emitter, never in the
// transport. The default (no WithExecutor) is the in-process worker
// pool.
type CellExecutor = exec.CellExecutor

// RemoteOptions tunes a fleet coordinator (NewRemoteExecutor): per-node
// in-flight windows, the straggler re-dispatch threshold, and the
// health-probe cadence. The zero value is a sensible default.
type RemoteOptions = exec.RemoteOptions

// NodeStats is the cumulative per-node accounting of a fleet
// coordinator: cells assigned by the hash ring, completed, stolen from
// struggling peers, and requeued off dead or draining nodes. Surfaced
// per node on GET /metrics.
type NodeStats = exec.NodeStats

// RemoteExecutor is a fleet coordinator: it consistent-hashes each
// cell's content address across worker nodes (correctbenchd -worker),
// bounds per-node in-flight work, probes node health, steals work from
// stragglers, and reassigns the cells of dead or draining nodes — so a
// job survives the loss of any worker mid-run with byte-identical
// output. Construct with NewRemoteExecutor and attach via WithExecutor.
type RemoteExecutor = exec.Remote

// NewRemoteExecutor returns a coordinator over the given worker
// addresses (host:port, each a correctbenchd -worker). Connections are
// per-job; the value itself only carries options and counters, so one
// executor serves any number of concurrent jobs.
func NewRemoteExecutor(peers []string, opt RemoteOptions) (*RemoteExecutor, error) {
	return exec.NewRemote(peers, opt)
}

// FleetWorker is one worker node: it serves cells to coordinators over
// the fleet protocol, executing each through the full simulation
// pipeline. Run one per machine with correctbenchd -worker, or embed
// via NewFleetWorker + Serve.
type FleetWorker = exec.Worker

// FleetWorkerStats is a worker node's live counters (see
// FleetWorker.Stats).
type FleetWorkerStats = exec.WorkerStats

// NewFleetWorker returns a worker node executing at most workers cells
// concurrently (min 1). st, when non-nil, is the node's local result
// store: already-finished cells replay without simulation and fresh
// outcomes are written back best-effort (the coordinator's own store
// stays authoritative for resume-by-spec). Note OpenDiskStore
// directories are single-writer — give each worker process its own
// directory, or no store at all.
func NewFleetWorker(st Store, workers int) *FleetWorker {
	return exec.NewWorker(harness.NewCellRunner(st), workers)
}
