package correctbench

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// scrapeMetrics fetches /metrics and parses its series lines into a
// "series -> value" map, skipping the # HELP/# TYPE exposition
// headers (validated separately by TestMetricsExposition).
func scrapeMetrics(t *testing.T, base string) map[string]string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("metrics line %q is not \"series value\"", line)
		}
		out[key] = val
	}
	return out
}

func metricInt(t *testing.T, m map[string]string, key string) int {
	t.Helper()
	v, ok := m[key]
	if !ok {
		t.Fatalf("metric %q missing from %v", key, m)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("metric %s = %q, not an integer", key, v)
	}
	return n
}

func TestMetricsEndpoint(t *testing.T) {
	c := NewClient(WithStore(NewMemoryStore(0)))
	// Burst 1 with a negligible refill: the first submit takes the only
	// token, the second is refused — that's the queue_refusals gauge.
	ts := httptest.NewServer(NewServer(c, WithLimits(Limits{
		RatePerSec: 0.0001, Burst: 1, MaxBodyBytes: defaultMaxBodyBytes,
	})))
	t.Cleanup(ts.Close)

	spec := ExperimentSpec{Seed: 5, Reps: 1, Problems: []string{"halfadd"}}
	resp := postJSON(t, ts.URL+"/v1/experiments", spec)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %s", resp.Status)
	}
	if _, err := c.Jobs()[0].Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	refused := postJSON(t, ts.URL+"/v1/experiments", spec)
	refused.Body.Close()
	if refused.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit status = %s, want 429", refused.Status)
	}

	m := scrapeMetrics(t, ts.URL)
	if got := metricInt(t, m, "cells_done"); got != 3 {
		t.Errorf("cells_done = %d, want 3 (one rep, one problem, three methods)", got)
	}
	if got := metricInt(t, m, "jobs_total"); got != 1 {
		t.Errorf("jobs_total = %d, want 1", got)
	}
	if got := metricInt(t, m, "jobs_active"); got != 0 {
		t.Errorf("jobs_active = %d, want 0 after Wait", got)
	}
	if got := metricInt(t, m, "queue_refusals"); got != 1 {
		t.Errorf("queue_refusals = %d, want 1", got)
	}
	if got := metricInt(t, m, "jobs_degraded"); got != 0 {
		t.Errorf("jobs_degraded = %d, want 0", got)
	}
	// Store-backed client: hit/miss gauges must be present, and a cold
	// 3-cell run is 3 misses.
	if got := metricInt(t, m, "store_misses"); got != 3 {
		t.Errorf("store_misses = %d, want 3", got)
	}
	if _, ok := m["store_hit_ratio"]; !ok {
		t.Error("store_hit_ratio missing on a store-backed client")
	}
	for _, key := range []string{"uptime_seconds", "cells_per_sec"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metric %q missing", key)
		}
	}
	// No fleet executor: no fleet gauges.
	if _, ok := m["fleet_nodes"]; ok {
		t.Error("fleet_nodes present without a fleet executor")
	}
}

func TestMetricsFleetGauges(t *testing.T) {
	// TEST-NET addresses; the executor is never exercised, only its
	// per-node accounting is scraped.
	rex, err := NewRemoteExecutor([]string{"192.0.2.1:9", "192.0.2.2:9"}, RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(WithExecutor(rex))
	ts := httptest.NewServer(NewServer(c))
	t.Cleanup(ts.Close)

	if _, ok := c.FleetStats(); !ok {
		t.Fatal("FleetStats not available on a remote-executor client")
	}

	m := scrapeMetrics(t, ts.URL)
	if got := metricInt(t, m, "fleet_nodes"); got != 2 {
		t.Fatalf("fleet_nodes = %d, want 2", got)
	}
	for _, addr := range []string{"192.0.2.1:9", "192.0.2.2:9"} {
		for _, gauge := range []string{"healthy", "assigned", "completed", "stolen", "requeued"} {
			key := "fleet_node_" + gauge + `{node="` + addr + `"}`
			if got := metricInt(t, m, key); got != 0 {
				t.Errorf("%s = %d, want 0 on an idle fleet", key, got)
			}
		}
	}
	// No store: no store gauges.
	if _, ok := m["store_hits"]; ok {
		t.Error("store_hits present without a store")
	}
}
