// Command detlint lints the repo's own determinism invariants. The
// harness promises byte-identical tables and event streams for a
// given seed, and the store promises byte-identical shards; the three
// classic ways Go code breaks such promises are wall-clock reads,
// the global math/rand source, and iteration over maps.
//
// detlint parses the determinism-critical scope (internal/exec,
// internal/harness, internal/store, events.go by default) with go/ast — no type
// checker, no external tooling — and flags:
//
//   - calls to time.Now
//   - uses of math/rand's global-source API (rand.Intn, rand.Seed,
//     ...; constructing seeded generators via rand.New/NewSource and
//     referring to the rand.Rand/Source types stay legal)
//   - range statements over expressions declared as maps anywhere in
//     the scanned scope (a heuristic: no type inference, so only
//     names whose declaration is visibly a map are matched)
//
// A finding is suppressed by a directive comment on the same line or
// the line above:
//
//	start := time.Now() //detlint:allow wall-clock metric, not in event payloads
//
// Usage:
//
//	detlint                      # lint the default scope
//	detlint ./internal/foo bar.go
//
// Exit status: 0 clean, 1 findings, 2 on parse/usage errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

var defaultScope = []string{"internal/exec", "internal/harness", "internal/obs", "internal/store", "events.go"}

type finding struct {
	pos token.Position
	msg string
}

func main() {
	flag.Parse()
	scope := flag.Args()
	if len(scope) == 0 {
		scope = defaultScope
	}

	var files []string
	for _, path := range scope {
		info, err := os.Stat(path)
		if err != nil {
			fatal("%v", err)
		}
		if !info.IsDir() {
			files = append(files, path)
			continue
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			fatal("%v", err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			files = append(files, filepath.Join(path, name))
		}
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fatal("%v", err)
		}
		parsed = append(parsed, f)
	}

	mapNames := collectMapNames(parsed)
	var findings []finding
	for _, f := range parsed {
		findings = append(findings, lintFile(fset, f, mapNames)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, f := range findings {
		fmt.Printf("%s:%d: %s\n", f.pos.Filename, f.pos.Line, f.msg)
	}
	if len(findings) > 0 {
		fmt.Printf("detlint: %d finding(s) in %d file(s)\n", len(findings), len(files))
		os.Exit(1)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "detlint: "+format+"\n", args...)
	os.Exit(2)
}

// collectMapNames indexes identifiers whose declaration is visibly a
// map across the scanned files: struct fields, var declarations with
// a map type, and assignments from make(map...) or map literals.
func collectMapNames(files []*ast.File) map[string]bool {
	names := map[string]bool{}
	record := func(idents []*ast.Ident, typ ast.Expr) {
		if _, ok := typ.(*ast.MapType); !ok {
			return
		}
		for _, id := range idents {
			names[id.Name] = true
		}
	}
	isMapExpr := func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.CompositeLit:
			_, ok := x.Type.(*ast.MapType)
			return ok
		case *ast.CallExpr:
			if fn, ok := x.Fun.(*ast.Ident); ok && fn.Name == "make" && len(x.Args) > 0 {
				_, isMap := x.Args[0].(*ast.MapType)
				return isMap
			}
		}
		return false
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Field:
				record(x.Names, x.Type)
			case *ast.ValueSpec:
				if x.Type != nil {
					record(x.Names, x.Type)
				}
				for i, v := range x.Values {
					if isMapExpr(v) && i < len(x.Names) {
						names[x.Names[i].Name] = true
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					if isMapExpr(rhs) && i < len(x.Lhs) {
						if id, ok := x.Lhs[i].(*ast.Ident); ok {
							names[id.Name] = true
						}
					}
				}
			}
			return true
		})
	}
	return names
}

// importAlias returns the name the file refers to importPath by, or
// "" if not imported.
func importAlias(f *ast.File, importPath string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != importPath {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return importPath[strings.LastIndex(importPath, "/")+1:]
	}
	return ""
}

// globalRandAllowed are math/rand selectors that do not touch the
// global source: constructors and type names.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
}

func lintFile(fset *token.FileSet, f *ast.File, mapNames map[string]bool) []finding {
	timeAlias := importAlias(f, "time")
	randAlias := importAlias(f, "math/rand")
	allowed := allowedLines(fset, f)

	var out []finding
	flag := func(n ast.Node, format string, args ...interface{}) {
		pos := fset.Position(n.Pos())
		if allowed[pos.Line] {
			return
		}
		out = append(out, finding{pos: pos, msg: fmt.Sprintf(format, args...)})
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			pkg, ok := x.X.(*ast.Ident)
			if !ok || pkg.Obj != nil { // shadowed: a local, not the package
				return true
			}
			if timeAlias != "" && pkg.Name == timeAlias && x.Sel.Name == "Now" {
				flag(x, "time.Now breaks run-to-run determinism; thread a clock or add //detlint:allow")
			}
			if randAlias != "" && pkg.Name == randAlias && !globalRandAllowed[x.Sel.Name] {
				flag(x, "math/rand global source (rand.%s) is unseeded shared state; use rand.New(rand.NewSource(seed))", x.Sel.Name)
			}
		case *ast.RangeStmt:
			var name string
			switch e := ast.Unparen(x.X).(type) {
			case *ast.Ident:
				name = e.Name
			case *ast.SelectorExpr:
				name = e.Sel.Name
			}
			if name != "" && mapNames[name] && !isKeyCollect(x) {
				flag(x, "range over map %q has nondeterministic order; iterate sorted keys or add //detlint:allow", name)
			}
		}
		return true
	})
	return out
}

// isKeyCollect recognizes the canonical deterministic-iteration
// prelude — `for k := range m { keys = append(keys, k) }` — whose
// order cannot leak because the keys are (by convention) sorted
// before use. Only the exact single-append shape qualifies.
func isKeyCollect(r *ast.RangeStmt) bool {
	key, ok := r.Key.(*ast.Ident)
	if !ok || r.Value != nil || len(r.Body.List) != 1 {
		return false
	}
	asg, ok := r.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	last, ok := call.Args[1].(*ast.Ident)
	return ok && last.Name == key.Name
}

// allowedLines collects the lines covered by //detlint:allow
// directives: the directive's own line and the one below it.
func allowedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, "//detlint:allow") {
				continue
			}
			line := fset.Position(c.Pos()).Line
			out[line] = true
			out[line+1] = true
		}
	}
	return out
}
