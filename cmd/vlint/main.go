// Command vlint runs the static design analysis (internal/vstatic)
// over Verilog files or dataset problems and reports diagnostics:
// multiple drivers, combinational loops, latch inference, width
// truncation, unreachable case arms, undeclared names.
//
// Usage:
//
//	vlint file.v [file2.v ...]     # lint files (all modules)
//	vlint -problems mux2,gray_dec4 # lint dataset golden RTL by name
//	vlint -all                     # lint every dataset golden
//	vlint -json file.v             # machine-readable output
//	vlint -info -all               # include info-severity findings
//
// Exit status: 0 when nothing at or above the gate severity was
// found, 1 when diagnostics were reported, 2 on usage or I/O errors.
// The default gate is warning; -info lowers it so extension notes
// also count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"correctbench/internal/dataset"
	"correctbench/internal/vstatic"
)

type fileReport struct {
	Name    string            `json:"name"`
	Results []*vstatic.Result `json:"results"`
}

func main() {
	problems := flag.String("problems", "", "comma-separated dataset problem names to lint")
	all := flag.Bool("all", false, "lint every dataset problem's golden RTL")
	asJSON := flag.Bool("json", false, "emit JSON instead of text")
	info := flag.Bool("info", false, "count info-severity findings toward the exit status")
	flag.Parse()

	gate := vstatic.SevWarning
	if *info {
		gate = vstatic.SevInfo
	}

	var reports []fileReport
	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "vlint: "+format+"\n", args...)
		os.Exit(2)
	}

	switch {
	case *all:
		for _, p := range dataset.All() {
			rs, err := vstatic.AnalyzeSource(p.Source, p.Top)
			if err != nil {
				fail("%s: %v", p.Name, err)
			}
			reports = append(reports, fileReport{Name: p.Name, Results: rs})
		}
	case *problems != "":
		for _, name := range strings.Split(*problems, ",") {
			name = strings.TrimSpace(name)
			p := dataset.ByName(name)
			if p == nil {
				fail("unknown problem %q", name)
			}
			rs, err := vstatic.AnalyzeSource(p.Source, p.Top)
			if err != nil {
				fail("%s: %v", name, err)
			}
			reports = append(reports, fileReport{Name: name, Results: rs})
		}
	default:
		if flag.NArg() == 0 {
			fail("no input: pass Verilog files, -problems, or -all")
		}
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fail("%v", err)
			}
			rs, err := vstatic.AnalyzeSource(string(src), "")
			if err != nil {
				fail("%s: %v", path, err)
			}
			reports = append(reports, fileReport{Name: path, Results: rs})
		}
	}
	sort.SliceStable(reports, func(i, j int) bool { return reports[i].Name < reports[j].Name })

	flagged := 0
	for _, rep := range reports {
		for _, r := range rep.Results {
			flagged += r.Count(gate)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fail("%v", err)
		}
	} else {
		clean := 0
		for _, rep := range reports {
			for _, r := range rep.Results {
				shown := 0
				for _, d := range r.Diags {
					if d.Severity >= gate {
						fmt.Printf("%s: %s: %s\n", rep.Name, r.Module, d)
						shown++
					}
				}
				if shown == 0 {
					clean++
				}
			}
		}
		fmt.Printf("vlint: %d module(s) analyzed, %d clean, %d diagnostic(s)\n",
			countModules(reports), clean, flagged)
	}
	if flagged > 0 {
		os.Exit(1)
	}
}

func countModules(reports []fileReport) int {
	n := 0
	for _, rep := range reports {
		n += len(rep.Results)
	}
	return n
}
