// Command traceview renders a job's cell-trace stream — the NDJSON
// produced by GET /v1/experiments/{id}/trace (one CellTrace per line)
// — as a per-job phase summary, a critical-path breakdown, and text
// flamegraphs of the slowest cells.
//
// Usage:
//
//	traceview [flags] [trace.ndjson]
//
// With no file argument (or "-") the trace is read from stdin, so it
// composes with curl:
//
//	curl -s localhost:8080/v1/experiments/exp-1/trace | traceview
//
// Flags:
//
//	-top N      flamegraphs for the N slowest cells (default 3)
//	-width N    flamegraph bar width in columns (default 64)
//	-selfcheck  render a synthetic trace and verify the output
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"correctbench/internal/obs"
)

func main() {
	top := flag.Int("top", 3, "flamegraphs for the N slowest cells")
	width := flag.Int("width", 64, "flamegraph bar width in columns")
	selfcheck := flag.Bool("selfcheck", false, "render a synthetic trace and verify the output")
	flag.Parse()

	if *selfcheck {
		if err := runSelfcheck(*top, *width); err != nil {
			fmt.Fprintln(os.Stderr, "traceview selfcheck failed:", err)
			os.Exit(1)
		}
		fmt.Println("traceview selfcheck ok")
		return
	}

	in := os.Stdin
	if name := flag.Arg(0); name != "" && name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traceview:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	cells, err := readTrace(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
	render(os.Stdout, cells, *top, *width)
}

// readTrace parses one CellTrace per NDJSON line.
func readTrace(r io.Reader) ([]obs.CellTrace, error) {
	var cells []obs.CellTrace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ct obs.CellTrace
		if err := json.Unmarshal(line, &ct); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		cells = append(cells, ct)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cells, nil
}

// cellWall returns a cell's traced wall time: the extent of its span
// window in microseconds.
func cellWall(ct obs.CellTrace) int64 {
	if len(ct.Spans) == 0 {
		return 0
	}
	lo, hi := ct.Spans[0].StartUS, int64(0)
	for _, sp := range ct.Spans {
		if sp.StartUS < lo {
			lo = sp.StartUS
		}
		if end := sp.StartUS + sp.DurUS; end > hi {
			hi = end
		}
	}
	return hi - lo
}

func fmtUS(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}

// render writes the full report: phase summary, per-job critical
// path, and flamegraphs of the top slowest cells.
func render(w io.Writer, cells []obs.CellTrace, top, width int) {
	if len(cells) == 0 {
		fmt.Fprintln(w, "no cells in trace")
		return
	}

	// Phase summary over every span of every cell.
	type agg struct {
		count    int
		sum, max int64
	}
	phases := map[string]*agg{}
	cached := 0
	var jobWall int64
	for _, ct := range cells {
		if ct.Cached {
			cached++
		}
		jobWall += cellWall(ct)
		for _, sp := range ct.Spans {
			a := phases[sp.Phase]
			if a == nil {
				a = &agg{}
				phases[sp.Phase] = a
			}
			a.count++
			a.sum += sp.DurUS
			if sp.DurUS > a.max {
				a.max = sp.DurUS
			}
		}
	}
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return phases[names[i]].sum > phases[names[j]].sum })

	fmt.Fprintf(w, "trace: %d cells (%d cached), traced wall time %s\n\n", len(cells), cached, fmtUS(jobWall))
	fmt.Fprintf(w, "%-16s %8s %12s %12s %12s\n", "phase", "count", "total", "mean", "max")
	for _, name := range names {
		a := phases[name]
		fmt.Fprintf(w, "%-16s %8d %12s %12s %12s\n",
			name, a.count, fmtUS(a.sum), fmtUS(a.sum/int64(a.count)), fmtUS(a.max))
	}

	// Critical path of the slowest cell: from the heaviest root span,
	// descend into the heaviest child at each level.
	sorted := append([]obs.CellTrace(nil), cells...)
	sort.Slice(sorted, func(i, j int) bool {
		wi, wj := cellWall(sorted[i]), cellWall(sorted[j])
		if wi != wj {
			return wi > wj
		}
		return sorted[i].Index < sorted[j].Index
	})
	slowest := sorted[0]
	fmt.Fprintf(w, "\ncritical path (slowest cell: #%d %s/%s rep %d, %s):\n",
		slowest.Index, slowest.Method, slowest.Problem, slowest.Rep, fmtUS(cellWall(slowest)))
	wall := cellWall(slowest)
	for _, sp := range criticalPath(slowest) {
		pct := 0.0
		if wall > 0 {
			pct = 100 * float64(sp.DurUS) / float64(wall)
		}
		node := ""
		if sp.Node != "" {
			node = " @" + sp.Node
		}
		fmt.Fprintf(w, "  %-16s %12s  %5.1f%%%s\n", sp.Phase, fmtUS(sp.DurUS), pct, node)
	}

	// Flamegraphs of the top slowest cells.
	if top > len(sorted) {
		top = len(sorted)
	}
	for i := 0; i < top; i++ {
		fmt.Fprintln(w)
		flamegraph(w, sorted[i], width)
	}
}

// criticalPath walks the span tree from the heaviest root down the
// heaviest child chain.
func criticalPath(ct obs.CellTrace) []obs.Span {
	children := map[string][]obs.Span{}
	var roots []obs.Span
	for _, sp := range ct.Spans {
		if sp.Parent == "" {
			roots = append(roots, sp)
		} else {
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
	}
	heaviest := func(spans []obs.Span) (obs.Span, bool) {
		if len(spans) == 0 {
			return obs.Span{}, false
		}
		best := spans[0]
		for _, sp := range spans[1:] {
			if sp.DurUS > best.DurUS {
				best = sp
			}
		}
		return best, true
	}
	var path []obs.Span
	cur, ok := heaviest(roots)
	for ok {
		path = append(path, cur)
		cur, ok = heaviest(children[cur.ID])
	}
	return path
}

// flamegraph renders one cell's span tree as a timeline: each span a
// bar positioned and sized by its start offset and duration within
// the cell's window, indented by tree depth, in start order.
func flamegraph(w io.Writer, ct obs.CellTrace, width int) {
	if width < 8 {
		width = 8
	}
	node := ""
	if ct.Node != "" {
		node = " node=" + ct.Node
	}
	cachedMark := ""
	if ct.Cached {
		cachedMark = " (cached)"
	}
	fmt.Fprintf(w, "cell #%d %s/%s rep %d  %s%s%s\n",
		ct.Index, ct.Method, ct.Problem, ct.Rep, fmtUS(cellWall(ct)), node, cachedMark)
	if len(ct.Spans) == 0 {
		return
	}
	lo := ct.Spans[0].StartUS
	for _, sp := range ct.Spans {
		if sp.StartUS < lo {
			lo = sp.StartUS
		}
	}
	window := cellWall(ct)
	if window < 1 {
		window = 1
	}
	depth := map[string]int{}
	parentOf := map[string]string{}
	for _, sp := range ct.Spans {
		parentOf[sp.ID] = sp.Parent
	}
	depthOf := func(id string) int {
		if d, ok := depth[id]; ok {
			return d
		}
		d := 0
		for p := parentOf[id]; p != ""; p = parentOf[p] {
			d++
			if d > len(ct.Spans) { // cycle guard; never happens in well-formed traces
				break
			}
		}
		depth[id] = d
		return d
	}
	for _, sp := range ct.Spans {
		off := int(float64(sp.StartUS-lo) / float64(window) * float64(width))
		length := int(float64(sp.DurUS) / float64(window) * float64(width))
		if length < 1 {
			length = 1
		}
		if off >= width {
			off = width - 1
		}
		if off+length > width {
			length = width - off
		}
		bar := strings.Repeat(" ", off) + strings.Repeat("█", length) + strings.Repeat(" ", width-off-length)
		fmt.Fprintf(w, "  |%s| %s%-16s %s\n", bar, strings.Repeat("  ", depthOf(sp.ID)), sp.Phase, fmtUS(sp.DurUS))
	}
}

// runSelfcheck renders a synthetic two-cell trace through the full
// parse+render path and verifies the report mentions every phase —
// the CI smoke test for the tool itself.
func runSelfcheck(top, width int) error {
	mk := func(index int, problem string, base int64) obs.CellTrace {
		traceID := fmt.Sprintf("selfcheck-%d", index)
		samples := []obs.PhaseSample{
			{Phase: obs.PhaseQueueWait, Seq: 0, ParentSeq: -1, StartUS: 0, DurUS: 50},
			{Phase: obs.PhaseLookup, Seq: 1, ParentSeq: -1, StartUS: 50, DurUS: 10},
			{Phase: obs.PhaseSimulate, Seq: 2, ParentSeq: -1, StartUS: 60, DurUS: base},
			{Phase: obs.PhaseElaborate, Seq: 3, ParentSeq: 2, StartUS: 70, DurUS: base / 10},
			{Phase: obs.PhaseRun, Seq: 4, ParentSeq: 2, StartUS: 70 + base/10, DurUS: base / 2},
			{Phase: obs.PhaseGrade, Seq: 5, ParentSeq: -1, StartUS: 60 + base, DurUS: base / 3},
			{Phase: obs.PhaseWriteback, Seq: 6, ParentSeq: -1, StartUS: 60 + base + base/3, DurUS: 20},
		}
		return obs.CellTrace{
			Index: index, Method: "CorrectBench", Rep: 0, Problem: problem,
			Key: traceID, Spans: obs.BuildSpans(traceID, samples),
		}
	}
	var ndjson bytes.Buffer
	enc := json.NewEncoder(&ndjson)
	for i, ct := range []obs.CellTrace{mk(0, "halfadd", 9000), mk(1, "cnt4", 3000)} {
		if err := enc.Encode(ct); err != nil {
			return fmt.Errorf("encode cell %d: %w", i, err)
		}
	}
	cells, err := readTrace(&ndjson)
	if err != nil {
		return err
	}
	if len(cells) != 2 {
		return fmt.Errorf("parsed %d cells, want 2", len(cells))
	}
	var out bytes.Buffer
	render(&out, cells, top, width)
	report := out.String()
	for _, want := range []string{
		obs.PhaseQueueWait, obs.PhaseLookup, obs.PhaseSimulate,
		obs.PhaseElaborate, obs.PhaseRun, obs.PhaseGrade, obs.PhaseWriteback,
		"critical path", "2 cells", "█",
	} {
		if !strings.Contains(report, want) {
			return fmt.Errorf("report is missing %q:\n%s", want, report)
		}
	}
	return nil
}
