// Command criteria runs the validation-criteria studies of Section
// IV-C through the Client API: Fig. 6(a), validation accuracy of the
// 100%/70%/50%-wrong criteria on a labeled testbench corpus, and
// Fig. 6(b), the whole CorrectBench framework under each criterion
// with token accounting. Ctrl-C cancels the running study cleanly.
//
// Usage:
//
//	criteria -fig6a -pertask 10        # 1560-testbench corpus
//	criteria -fig6b -reps 1
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"correctbench"
	"correctbench/internal/harness"
)

func main() {
	var (
		fig6a   = flag.Bool("fig6a", false, "run the validation-accuracy study")
		fig6b   = flag.Bool("fig6b", false, "run the criterion pipeline study")
		perTask = flag.Int("pertask", 10, "testbenches per task for fig6a (paper: 10, i.e. 1560 total)")
		reps    = flag.Int("reps", 1, "repetitions for fig6b")
		seed    = flag.Int64("seed", 42, "master random seed")
		workers = flag.Int("workers", 0, "concurrent cells/problems (0: all CPUs, 1: sequential; results are identical either way)")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	if !*fig6a && !*fig6b {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := correctbench.NewClient()
	if *fig6a {
		rows, err := client.CriteriaAccuracy(ctx, correctbench.CriteriaAccuracySpec{
			PerTask: *perTask, Seed: *seed, Workers: *workers, Progress: progress,
		})
		exitOn(err)
		fmt.Println(harness.RenderFig6a(rows))
	}
	if *fig6b {
		rows, err := client.CriteriaPipeline(ctx, correctbench.ExperimentSpec{
			Reps: *reps, Seed: *seed, Workers: *workers,
		}, progress)
		exitOn(err)
		fmt.Println(harness.RenderFig6b(rows))
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "criteria:", err)
		os.Exit(1)
	}
}
