// Command correctbench runs the paper's main experiments: Table I
// (main results), Table II (AutoEval criteria) and Table III
// (validator/corrector attribution), or a single task end to end.
//
// It drives the job-oriented Client API: the experiment is submitted
// as a job, progress is rendered from the typed event stream, and
// Ctrl-C cancels the job cleanly (workers stop within one simulation
// step batch).
//
// Usage:
//
//	correctbench -table1 -reps 5 -seed 42
//	correctbench -table2
//	correctbench -table3 -reps 5
//	correctbench -task shift18 -seed 1
//
// With -store-dir every finished experiment cell is persisted to a
// content-addressed result store: rerunning the same experiment (or
// resuming one cancelled with Ctrl-C) replays the finished cells and
// simulates only the remainder, producing byte-identical tables.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"correctbench"
	"correctbench/internal/harness"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "run the Table I experiment")
		table2    = flag.Bool("table2", false, "print the Table II criterion definitions")
		table3    = flag.Bool("table3", false, "run the Table III attribution experiment")
		task      = flag.String("task", "", "run a single named task through CorrectBench")
		reps      = flag.Int("reps", 5, "experiment repetitions (paper: 5)")
		seed      = flag.Int64("seed", 42, "master random seed")
		llmName   = flag.String("llm", "gpt-4o", "LLM profile: gpt-4o | claude-3.5-sonnet | gpt-4o-mini")
		criterion = flag.String("criterion", "70%-wrong", "validation criterion")
		workers   = flag.Int("workers", 0, "concurrent experiment cells (0: all CPUs, 1: sequential; results are identical either way)")
		storeDir  = flag.String("store-dir", "", "persist finished cells to this result store; reruns and resumed runs replay them instead of simulating")
		csvPath   = flag.String("csv", "", "also write per-task outcomes as CSV to this path")
		quiet     = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Every exit path below goes through this drain-aware exitOn or
	// falls off main, so the client is always closed — including on
	// Ctrl-C, where Close waits out the workers' in-flight cells and
	// their store write-backs. That is what makes -store-dir runs
	// resumable.
	var client *correctbench.Client
	drain := func() {
		if client != nil {
			_ = client.Close(context.Background())
		}
	}
	defer drain()
	exitOn := func(err error) {
		if err != nil {
			drain()
			fmt.Fprintln(os.Stderr, "correctbench:", err)
			os.Exit(1)
		}
	}
	var opts []correctbench.ClientOption
	if *storeDir != "" {
		st, err := correctbench.OpenDiskStore(*storeDir)
		exitOn(err)
		opts = append(opts, correctbench.WithStore(st))
	}
	client = correctbench.NewClient(opts...)

	if *table2 {
		fmt.Print(harness.Table2())
	}

	if *task != "" {
		res, err := client.GenerateTestbench(ctx, *task, correctbench.TaskSpec{
			Seed: *seed, LLM: *llmName, Criterion: *criterion,
		})
		exitOn(err)
		grade, err := client.Grade(ctx, res.Testbench, *seed)
		exitOn(err)
		fmt.Printf("task %s: grade=%s validated=%v corrections=%d reboots=%d tokens=%d/%d scenarios=%d\n",
			*task, grade, res.Validated, res.Corrections, res.Reboots,
			res.TokensIn, res.TokensOut, res.Testbench.ScenarioCount())
	}

	if *table1 || *table3 {
		job, err := client.Submit(ctx, correctbench.ExperimentSpec{
			Seed: *seed, Reps: *reps, LLM: *llmName, Criterion: *criterion,
			Workers: *workers,
		})
		exitOn(err)
		// Progress from the typed event stream: one line per finished
		// (method, rep) group, in canonical order.
		for ev := range job.Events() {
			if g, ok := ev.(correctbench.MethodRepDone); ok && !*quiet {
				fmt.Fprintf(os.Stderr, "%s rep %d/%d done (%d tasks)\n", g.Method, g.Rep+1, g.Reps, g.Tasks)
			}
		}
		exp, err := job.Wait(ctx)
		exitOn(err)
		if s := job.Snapshot(); *storeDir != "" && !*quiet {
			fmt.Fprintf(os.Stderr, "store: replayed %d/%d cells, simulated %d\n",
				s.StoreHits, s.TotalCells, s.StoreMisses)
		}
		if *table1 {
			fmt.Println(exp.Table1())
		}
		if *table3 {
			fmt.Println(exp.Table3())
		}
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			exitOn(err)
			exitOn(exp.WriteCSV(f))
			exitOn(f.Close())
		}
	}

	if !*table1 && !*table2 && !*table3 && *task == "" {
		flag.Usage()
		os.Exit(2)
	}
}
