// Command rsmatrix reproduces Fig. 4: it builds RTL-Scenario matrices
// for a task — one for a correct testbench and one with an injected
// checker fault — and renders them as ASCII art together with each
// criterion's verdict.
//
// Usage:
//
//	rsmatrix -task cnt8 -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"

	"correctbench/internal/dataset"
	"correctbench/internal/llm"
	"correctbench/internal/mutate"
	"correctbench/internal/testbench"
	"correctbench/internal/validator"
	"correctbench/internal/verilog"
)

func main() {
	var (
		taskName = flag.String("task", "cnt8", "dataset task")
		seed     = flag.Int64("seed", 7, "random seed")
		nr       = flag.Int("nr", 20, "imperfect RTL group size (paper: 20)")
		workers  = flag.Int("workers", 0, "concurrent checker-fault probes (0: all CPUs; the same fault is found either way)")
	)
	flag.Parse()
	p := dataset.ByName(*taskName)
	if p == nil {
		fail(fmt.Errorf("unknown task %q", *taskName))
	}
	rng := rand.New(rand.NewSource(*seed))
	prof := llm.GPT4o()
	var acct llm.Accountant
	group, err := validator.GenerateRTLGroup(p, prof, *nr, rng, &acct)
	if err != nil {
		fail(err)
	}
	scs, err := testbench.GenerateScenarios(p, rng, testbench.Coverage{Scenarios: 10, Steps: 10, Corners: true})
	if err != nil {
		fail(err)
	}

	clean := &testbench.Testbench{Problem: p, Scenarios: scs, CheckerSource: p.Source, CheckerTop: p.Top, CheckerSticky: -1}
	clean.DriverSource = testbench.EmitDriver(clean)
	show("CORRECT testbench (golden checker)", clean, group)

	golden, err := p.Module()
	if err != nil {
		fail(err)
	}
	// Probe candidate checker faults in waves of one attempt per
	// worker, stopping at the first wave containing a hit. Each
	// attempt is an independent seeded derivation, so the winner — the
	// lowest attempt index whose fault is observable — is the same for
	// any worker count; with -workers 1 this degenerates to the
	// original sequential early-exit scan.
	const attempts = 50
	type found struct {
		tb   *testbench.Testbench
		muts []mutate.Mutation
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	probe := func(attempt int64) *found {
		plan := mutate.NewPlan(golden, rand.New(rand.NewSource(*seed+attempt)), 1)
		mod, muts := plan.Build(golden)
		if len(muts) == 0 {
			return nil
		}
		tb := &testbench.Testbench{Problem: p, Scenarios: scs, CheckerSource: verilog.PrintModule(mod), CheckerTop: p.Top, CheckerSticky: -1}
		tb.DriverSource = testbench.EmitDriver(tb)
		if res, err := tb.RunAgainstSource(p.Source, p.Top); err != nil || res.Pass() {
			return nil // fault not observable
		}
		return &found{tb: tb, muts: muts}
	}
	for base := int64(0); base < attempts; base += int64(w) {
		end := base + int64(w)
		if end > attempts {
			end = attempts
		}
		wave := make([]*found, end-base)
		var wg sync.WaitGroup
		for i := range wave {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				wave[i] = probe(base + int64(i))
			}(i)
		}
		wg.Wait()
		for _, f := range wave {
			if f == nil {
				continue
			}
			fmt.Printf("\nWRONG testbench: checker fault %v\n", f.muts)
			show("WRONG testbench", f.tb, group)
			return
		}
	}
	fmt.Fprintln(os.Stderr, "rsmatrix: no observable checker fault found")
}

func show(title string, tb *testbench.Testbench, group []validator.RTLCandidate) {
	fmt.Printf("== %s ==\n", title)
	v := &validator.Validator{Criterion: validator.Wrong70}
	m, ok := v.BuildMatrix(tb, group)
	if !ok {
		fmt.Println("testbench itself is broken")
		return
	}
	fmt.Print(m.Render())
	for _, c := range validator.Criteria() {
		rep := (&validator.Validator{Criterion: c}).Judge(m)
		fmt.Printf("%-12s verdict: correct=%v wrong=%v uncertain=%v\n", c.Name, rep.Correct, rep.Wrong, rep.Uncertain)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rsmatrix:", err)
	os.Exit(1)
}
