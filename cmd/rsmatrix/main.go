// Command rsmatrix reproduces Fig. 4: it builds RTL-Scenario matrices
// for a task — one for a correct testbench and one with an injected
// checker fault — and renders them as ASCII art together with each
// criterion's verdict.
//
// Usage:
//
//	rsmatrix -task cnt8 -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"correctbench/internal/dataset"
	"correctbench/internal/llm"
	"correctbench/internal/mutate"
	"correctbench/internal/testbench"
	"correctbench/internal/validator"
	"correctbench/internal/verilog"
)

func main() {
	var (
		taskName = flag.String("task", "cnt8", "dataset task")
		seed     = flag.Int64("seed", 7, "random seed")
		nr       = flag.Int("nr", 20, "imperfect RTL group size (paper: 20)")
	)
	flag.Parse()
	p := dataset.ByName(*taskName)
	if p == nil {
		fail(fmt.Errorf("unknown task %q", *taskName))
	}
	rng := rand.New(rand.NewSource(*seed))
	prof := llm.GPT4o()
	var acct llm.Accountant
	group, err := validator.GenerateRTLGroup(p, prof, *nr, rng, &acct)
	if err != nil {
		fail(err)
	}
	scs, err := testbench.GenerateScenarios(p, rng, testbench.Coverage{Scenarios: 10, Steps: 10, Corners: true})
	if err != nil {
		fail(err)
	}

	clean := &testbench.Testbench{Problem: p, Scenarios: scs, CheckerSource: p.Source, CheckerTop: p.Top, CheckerSticky: -1}
	clean.DriverSource = testbench.EmitDriver(clean)
	show("CORRECT testbench (golden checker)", clean, group)

	golden, err := p.Module()
	if err != nil {
		fail(err)
	}
	for attempt := int64(0); attempt < 50; attempt++ {
		plan := mutate.NewPlan(golden, rand.New(rand.NewSource(*seed+attempt)), 1)
		mod, muts := plan.Build(golden)
		if len(muts) == 0 {
			continue
		}
		tb := &testbench.Testbench{Problem: p, Scenarios: scs, CheckerSource: verilog.PrintModule(mod), CheckerTop: p.Top, CheckerSticky: -1}
		tb.DriverSource = testbench.EmitDriver(tb)
		if res, err := tb.RunAgainstSource(p.Source, p.Top); err != nil || res.Pass() {
			continue // fault not observable; try another
		}
		fmt.Printf("\nWRONG testbench: checker fault %v\n", muts)
		show("WRONG testbench", tb, group)
		return
	}
	fmt.Fprintln(os.Stderr, "rsmatrix: no observable checker fault found")
}

func show(title string, tb *testbench.Testbench, group []validator.RTLCandidate) {
	fmt.Printf("== %s ==\n", title)
	v := &validator.Validator{Criterion: validator.Wrong70}
	m, ok := v.BuildMatrix(tb, group)
	if !ok {
		fmt.Println("testbench itself is broken")
		return
	}
	fmt.Print(m.Render())
	for _, c := range validator.Criteria() {
		rep := (&validator.Validator{Criterion: c}).Judge(m)
		fmt.Printf("%-12s verdict: correct=%v wrong=%v uncertain=%v\n", c.Name, rep.Correct, rep.Wrong, rep.Uncertain)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rsmatrix:", err)
	os.Exit(1)
}
