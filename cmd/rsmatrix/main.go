// Command rsmatrix reproduces Fig. 4: it builds RTL-Scenario matrices
// for a task — one for a correct testbench and one with an injected
// checker fault — and renders them as ASCII art together with each
// criterion's verdict. The probe logic lives in the Client API
// (Client.RSMatrix); this command is a thin renderer over it.
//
// Usage:
//
//	rsmatrix -task cnt8 -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"correctbench"
)

func main() {
	var (
		taskName = flag.String("task", "cnt8", "dataset task")
		seed     = flag.Int64("seed", 7, "random seed")
		nr       = flag.Int("nr", 20, "imperfect RTL group size (paper: 20)")
		workers  = flag.Int("workers", 0, "concurrent checker-fault probes (0: all CPUs; the same fault is found either way)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := correctbench.NewClient().RSMatrix(ctx, correctbench.RSMatrixSpec{
		Problem: *taskName, Seed: *seed, RTLGroupSize: correctbench.Int(*nr), Workers: *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsmatrix:", err)
		os.Exit(1)
	}
	fmt.Print(rep.Clean)
	if rep.Fault == "" {
		fmt.Fprintln(os.Stderr, "rsmatrix: no observable checker fault found")
		return
	}
	fmt.Printf("\nWRONG testbench: checker fault %s\n", rep.Fault)
	fmt.Print(rep.Wrong)
}
