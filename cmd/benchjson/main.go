// Command benchjson measures harness wall-clock at several worker
// counts and writes the numbers as JSON, so the performance
// trajectory of the experiment pipeline is tracked from PR to PR in a
// machine-readable artifact.
//
// It runs the Table-I code path (three methods over a fixed CMB/SEQ
// problem mix) once per worker count, verifies that every run
// produced byte-identical tables (the harness's determinism
// guarantee), and records seconds plus speedup over workers=1.
//
// Usage:
//
//	benchjson                      # writes BENCH_harness.json
//	benchjson -o - -reps 2         # print to stdout, heavier run
//	benchjson -workers 1,2,4,8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"correctbench/internal/dataset"
	"correctbench/internal/harness"
)

type measurement struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup_vs_sequential"`
}

type report struct {
	Bench      string        `json:"bench"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Problems   int           `json:"problems"`
	Methods    int           `json:"methods"`
	Reps       int           `json:"reps"`
	Seed       int64         `json:"seed"`
	Identical  bool          `json:"tables_identical_across_workers"`
	Runs       []measurement `json:"runs"`
}

func main() {
	var (
		out        = flag.String("o", "BENCH_harness.json", "output path ('-' for stdout)")
		reps       = flag.Int("reps", 1, "experiment repetitions per run")
		seed       = flag.Int64("seed", 42, "master random seed")
		workersCSV = flag.String("workers", "", "comma-separated worker counts (default: 1,2,4,...,GOMAXPROCS)")
		full       = flag.Bool("full", false, "use all 156 problems instead of the 12-problem benchmark mix")
	)
	flag.Parse()

	counts, err := workerCounts(*workersCSV)
	exitOn(err)
	probs := benchProblems(*full)

	rep := report{
		Bench:      "harness.Run/table1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Problems:   len(probs),
		Methods:    len(harness.AllMethods()),
		Reps:       *reps,
		Seed:       *seed,
		Identical:  true,
	}
	var refTable string
	for i, w := range counts {
		start := time.Now()
		res, err := harness.Run(harness.Config{
			Reps: *reps, Seed: *seed, Problems: probs, Workers: w,
		})
		exitOn(err)
		secs := time.Since(start).Seconds()
		table := res.Table1()
		if i == 0 {
			refTable = table
		} else if table != refTable {
			rep.Identical = false
		}
		rep.Runs = append(rep.Runs, measurement{Workers: w, Seconds: round3(secs)})
		fmt.Fprintf(os.Stderr, "benchjson: workers=%d %.2fs\n", w, secs)
	}
	// Speedups are relative to the workers=1 run; without one the
	// field stays 0 rather than misnaming some other baseline.
	var baseline float64
	for _, m := range rep.Runs {
		if m.Workers == 1 {
			baseline = m.Seconds
			break
		}
	}
	if baseline > 0 {
		for i := range rep.Runs {
			if rep.Runs[i].Seconds > 0 {
				rep.Runs[i].Speedup = round3(baseline / rep.Runs[i].Seconds)
			}
		}
	}
	if !rep.Identical {
		fmt.Fprintln(os.Stderr, "benchjson: WARNING: tables differ across worker counts — determinism regression")
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	exitOn(err)
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	exitOn(os.WriteFile(*out, enc, 0o644))
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", *out)
}

// workerCounts parses -workers, defaulting to powers of two up to and
// always including GOMAXPROCS (and always starting at 1, the speedup
// baseline).
func workerCounts(csv string) ([]int, error) {
	if csv == "" {
		max := runtime.GOMAXPROCS(0)
		counts := []int{1}
		for w := 2; w <= max; w *= 2 {
			counts = append(counts, w)
		}
		if counts[len(counts)-1] != max {
			counts = append(counts, max)
		}
		return counts, nil
	}
	var counts []int
	for _, f := range strings.Split(csv, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", f)
		}
		counts = append(counts, w)
	}
	return counts, nil
}

// benchProblems is the fixed CMB/SEQ mix of the repo's Go benchmarks
// (dataset.BenchmarkMix), so the JSON numbers track the same workload.
func benchProblems(full bool) []*dataset.Problem {
	if full {
		return dataset.All()
	}
	return dataset.BenchmarkMix()
}

func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
