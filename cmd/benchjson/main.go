// Command benchjson measures harness wall-clock at several worker
// counts and writes the numbers as JSON, so the performance
// trajectory of the experiment pipeline is tracked from PR to PR in a
// machine-readable artifact.
//
// It runs the Table-I code path (three methods over a fixed CMB/SEQ
// problem mix) once per worker count, verifies that every run
// produced byte-identical tables (the harness's determinism
// guarantee), and records seconds plus speedup over workers=1.
//
// Usage:
//
//	benchjson                      # writes BENCH_harness.json
//	benchjson -o - -reps 2         # print to stdout, heavier run
//	benchjson -workers 1,2,4,8
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"correctbench"
	"correctbench/internal/dataset"
	"correctbench/internal/faults"
	"correctbench/internal/harness"
	"correctbench/internal/mutate"
	"correctbench/internal/sim"
	"correctbench/internal/store"
	"correctbench/internal/testbench"
	"correctbench/internal/verilog"
	"correctbench/internal/vstatic"
)

type measurement struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup_vs_sequential"`
}

// simMeasurement is one engine's single-core simulator throughput on
// the golden testbenches (a step = one stimulus application plus
// output sampling on both the DUT and checker instances).
type simMeasurement struct {
	Engine      string  `json:"engine"`
	Seconds     float64 `json:"seconds"`
	StepsPerSec float64 `json:"steps_per_sec"`
	Speedup     float64 `json:"speedup_vs_interp,omitempty"`
}

type simReport struct {
	Bench    string           `json:"bench"`
	Problems int              `json:"problems"`
	Steps    int              `json:"steps_per_pass"`
	Runs     []simMeasurement `json:"runs"`
}

// eventsMeasurement is one Client/Job run of the same workload, with
// or without an event-stream subscriber attached.
type eventsMeasurement struct {
	Mode        string  `json:"mode"` // "no_subscriber" | "subscriber"
	Seconds     float64 `json:"seconds"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// eventsReport tracks what the job event machinery costs on the hot
// path: the same Table-I workload run through Client.Submit, once
// with nobody listening (events are still recorded for Snapshot) and
// once with an NDJSON-marshaling subscriber draining the stream.
type eventsReport struct {
	Bench       string              `json:"bench"`
	Cells       int                 `json:"cells"`
	Runs        []eventsMeasurement `json:"runs"`
	OverheadPct float64             `json:"subscriber_overhead_pct"`
}

// obsMeasurement is one tracing setting's run of the Table-I workload
// through the Client: spec.NoTrace set (no collectors, no span
// assembly) versus the default traced submit.
type obsMeasurement struct {
	Mode        string  `json:"mode"` // "no_trace" | "traced"
	Seconds     float64 `json:"seconds"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// obsReport tracks what end-to-end cell tracing costs from PR to PR.
// Tracing is on by default for every submitted job, so its overhead is
// a standing tax on the whole service — the <5% bound is part of the
// observability contract and OverheadUnder5Pct records whether this
// build honors it. TracedSpans counts the spans the traced run
// actually produced (zero would mean the instrumentation went dead,
// making the overhead number vacuously good).
type obsReport struct {
	Bench             string           `json:"bench"`
	Cells             int              `json:"cells"`
	TracedSpans       int              `json:"traced_spans"`
	Runs              []obsMeasurement `json:"runs"`
	OverheadPct       float64          `json:"tracing_overhead_pct"`
	OverheadUnder5Pct bool             `json:"tracing_overhead_under_5pct"`
}

// storeMeasurement is one run of the Table-I workload against a disk
// result store: cold (empty store, every cell simulated and
// persisted) or warm (reopened store, every cell replayed).
type storeMeasurement struct {
	Mode        string  `json:"mode"` // "cold" | "warm"
	Seconds     float64 `json:"seconds"`
	CellsPerSec float64 `json:"cells_per_sec,omitempty"` // omitted when the run is too fast to time
	StoreHits   int     `json:"store_hits"`
	StoreMisses int     `json:"store_misses"`
}

// storeReport tracks the result store's value and overhead: the cold
// run pays the write-through (fsync per cell) against the
// no-store events baseline, the warm run measures pure replay
// throughput — the rate a fully-cached rerun or a crash-resumed job
// enjoys. FullyCached asserts the warm run simulated nothing.
type storeReport struct {
	Bench       string             `json:"bench"`
	Cells       int                `json:"cells"`
	Runs        []storeMeasurement `json:"runs"`
	WarmSpeedup float64            `json:"warm_speedup_vs_cold"`
	FullyCached bool               `json:"warm_fully_cached"`
}

// batchMeasurement is one batch-size setting of the mutant-batched
// engine over the mutant workload: all of a problem's mutant DUTs run
// as lanes of sim.BatchInstance batches of the given size, sharing one
// checker simulation per batch.
type batchMeasurement struct {
	Batch             int     `json:"batch"`
	Seconds           float64 `json:"seconds"`
	StepsPerSecMutant float64 `json:"steps_per_sec_per_mutant"`
	SpeedupVsCompiled float64 `json:"speedup_vs_compiled,omitempty"`
}

// batchReport tracks what mutant batching buys over the scalar
// compiled engine on the workload that dominates AutoEval: N mutants
// of each golden design run against the golden testbench. The
// baseline runs the identical DUT set sequentially on the compiled
// engine; a step is one stimulus application on one mutant lane.
type batchReport struct {
	Bench               string             `json:"bench"`
	Problems            int                `json:"problems"`
	Mutants             int                `json:"mutants_total"`
	StepsPerPass        int                `json:"mutant_steps_per_pass"`
	LevelizedProblems   int                `json:"levelized_problems"`
	CompiledSeconds     float64            `json:"compiled_seconds"`
	CompiledStepsPerSec float64            `json:"compiled_steps_per_sec_per_mutant"`
	Runs                []batchMeasurement `json:"runs"`
}

// robustnessMeasurement is one fault schedule's run of the Table-I
// workload against a fault-injected store: what was injected, what
// the harness's fault-tolerance layer did about it, and whether the
// run stayed correct.
type robustnessMeasurement struct {
	Schedule     string  `json:"schedule"` // "clean" | "transient_faults" | "store_dies"
	Seconds      float64 `json:"seconds"`
	InjectedOps  int64   `json:"injected_ops,omitempty"` // fault-injector decisions that fired
	PutRetries   int     `json:"store_put_retries"`
	PutDrops     int     `json:"store_put_drops"`
	BreakerTrips int     `json:"store_breaker_trips"`
	Degraded     bool    `json:"store_degraded"`
}

// robustnessReport tracks the store fault-tolerance guarantee from PR
// to PR: the same workload under seeded fault schedules must produce
// a Table I byte-identical to the clean run, with the retry/breaker
// counters showing the machinery actually engaged.
type robustnessReport struct {
	Bench           string                  `json:"bench"`
	Cells           int                     `json:"cells"`
	Runs            []robustnessMeasurement `json:"runs"`
	TablesIdentical bool                    `json:"tables_identical_across_schedules"`
}

// fleetMeasurement is one executor configuration's run of the Table-I
// workload through the Client: the in-process pool, or an in-process
// remote fleet of N worker nodes (real coordinator, real frame
// protocol, pipe transport instead of sockets).
type fleetMeasurement struct {
	Executor    string  `json:"executor"` // "local" | "remote_1_node" | ...
	Nodes       int     `json:"nodes,omitempty"`
	Seconds     float64 `json:"seconds"`
	CellsPerSec float64 `json:"cells_per_sec,omitempty"`
	Stolen      uint64  `json:"stolen_cells"`
	Requeued    uint64  `json:"requeued_cells"`
}

// fleetReport tracks distributed execution from PR to PR: what the
// coordinator/worker path costs against the in-process pool on the
// same workload, and how much work stealing rebalanced the static
// consistent-hash assignment (nonzero steals on a healthy multi-node
// run are load balancing, not failures: a drained node takes queued
// cells off its most loaded peer). The tables must match byte for
// byte across every executor.
type fleetReport struct {
	Bench           string             `json:"bench"`
	Cells           int                `json:"cells"`
	Runs            []fleetMeasurement `json:"runs"`
	TablesIdentical bool               `json:"tables_identical_across_executors"`
}

// staticReport tracks the static-analysis front from PR to PR: how
// much of the full golden dataset the levelized fast path covers
// (this gates batch-engine throughput), whether any golden RTL has
// picked up a lint diagnostic, and what the mutant pre-screen sees on
// a fixed-seed candidate sweep. Always measured over all problems,
// not the benchmark mix — coverage is a dataset property.
type staticReport struct {
	Bench             string             `json:"bench"`
	Problems          int                `json:"problems"`
	LevelizedProblems int                `json:"levelized_problems"`
	LevelizedPct      float64            `json:"levelized_pct"`
	CombProcs         int                `json:"comb_procs"`
	StaticCombProcs   int                `json:"static_comb_procs"`
	Diagnostics       int                `json:"golden_diagnostics"`
	Screen            mutate.ScreenStats `json:"mutant_prescreen"`
}

type report struct {
	Bench      string            `json:"bench"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Problems   int               `json:"problems"`
	Methods    int               `json:"methods"`
	Reps       int               `json:"reps"`
	Seed       int64             `json:"seed"`
	Identical  bool              `json:"tables_identical_across_workers"`
	Runs       []measurement     `json:"runs"`
	Sim        *simReport        `json:"sim,omitempty"`
	SimBatched *batchReport      `json:"sim_batched,omitempty"`
	Events     *eventsReport     `json:"events,omitempty"`
	Obs        *obsReport        `json:"observability,omitempty"`
	Store      *storeReport      `json:"store,omitempty"`
	Robustness *robustnessReport `json:"robustness,omitempty"`
	Fleet      *fleetReport      `json:"fleet,omitempty"`
	Static     *staticReport     `json:"static,omitempty"`
}

func main() {
	var (
		out        = flag.String("o", "BENCH_harness.json", "output path ('-' for stdout)")
		reps       = flag.Int("reps", 1, "experiment repetitions per run")
		seed       = flag.Int64("seed", 42, "master random seed")
		workersCSV = flag.String("workers", "", "comma-separated worker counts (default: 1,2,4,...,GOMAXPROCS)")
		full       = flag.Bool("full", false, "use all 156 problems instead of the 12-problem benchmark mix")
	)
	flag.Parse()

	counts, err := workerCounts(*workersCSV)
	exitOn(err)
	probs := benchProblems(*full)

	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintln(os.Stderr, "benchjson: WARNING: GOMAXPROCS=1 — worker speedups measure scheduling overhead only, not parallel gain; read the sim section (single-core engine throughput) instead")
	}

	rep := report{
		Bench:      "harness.Run/table1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Problems:   len(probs),
		Methods:    len(harness.AllMethods()),
		Reps:       *reps,
		Seed:       *seed,
		Identical:  true,
	}
	var refTable string
	for i, w := range counts {
		start := time.Now()
		res, err := harness.Run(harness.Config{
			Reps: *reps, Seed: *seed, Problems: probs, Workers: w,
		})
		exitOn(err)
		secs := time.Since(start).Seconds()
		table := res.Table1()
		if i == 0 {
			refTable = table
		} else if table != refTable {
			rep.Identical = false
		}
		rep.Runs = append(rep.Runs, measurement{Workers: w, Seconds: round3(secs)})
		fmt.Fprintf(os.Stderr, "benchjson: workers=%d %.2fs\n", w, secs)
	}
	// Speedups are relative to the workers=1 run; without one the
	// field stays 0 rather than misnaming some other baseline.
	var baseline float64
	for _, m := range rep.Runs {
		if m.Workers == 1 {
			baseline = m.Seconds
			break
		}
	}
	if baseline > 0 {
		for i := range rep.Runs {
			if rep.Runs[i].Seconds > 0 {
				rep.Runs[i].Speedup = round3(baseline / rep.Runs[i].Seconds)
			}
		}
	}
	if !rep.Identical {
		fmt.Fprintln(os.Stderr, "benchjson: WARNING: tables differ across worker counts — determinism regression")
	}

	simRep, err := simBench(probs)
	exitOn(err)
	rep.Sim = simRep

	sbRep, err := simBatchedBench(probs)
	exitOn(err)
	rep.SimBatched = sbRep

	evRep, err := eventsBench(probs, *reps, *seed)
	exitOn(err)
	rep.Events = evRep

	obRep, err := obsBench(probs, *reps, *seed)
	exitOn(err)
	rep.Obs = obRep

	stRep, err := storeBench(probs, *reps, *seed)
	exitOn(err)
	rep.Store = stRep

	roRep, err := robustnessBench(probs, *reps, *seed)
	exitOn(err)
	rep.Robustness = roRep

	flRep, err := fleetBench(probs, *reps, *seed)
	exitOn(err)
	rep.Fleet = flRep

	saRep, err := staticBench()
	exitOn(err)
	rep.Static = saRep

	enc, err := json.MarshalIndent(rep, "", "  ")
	exitOn(err)
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	exitOn(os.WriteFile(*out, enc, 0o644))
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", *out)
}

// workerCounts parses -workers, defaulting to powers of two up to and
// always including GOMAXPROCS (and always starting at 1, the speedup
// baseline).
func workerCounts(csv string) ([]int, error) {
	if csv == "" {
		max := runtime.GOMAXPROCS(0)
		counts := []int{1}
		for w := 2; w <= max; w *= 2 {
			counts = append(counts, w)
		}
		if counts[len(counts)-1] != max {
			counts = append(counts, max)
		}
		return counts, nil
	}
	var counts []int
	for _, f := range strings.Split(csv, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", f)
		}
		counts = append(counts, w)
	}
	return counts, nil
}

// benchProblems is the fixed CMB/SEQ mix of the repo's Go benchmarks
// (dataset.BenchmarkMix), so the JSON numbers track the same workload.
func benchProblems(full bool) []*dataset.Problem {
	if full {
		return dataset.All()
	}
	return dataset.BenchmarkMix()
}

// simBench measures raw simulator throughput — steps/sec on the golden
// testbenches against the golden RTLs — once per engine, interpreter
// vs compiled. This is the single-core number the harness wall-clock
// is gated on.
func simBench(probs []*dataset.Problem) (*simReport, error) {
	type fixture struct {
		tb    *testbench.Testbench
		d     *sim.Design
		steps int
	}
	var fixtures []fixture
	total := 0
	for _, p := range probs {
		tb, err := testbench.Golden(p, rand.New(rand.NewSource(1)))
		if err != nil {
			return nil, fmt.Errorf("sim bench: golden %s: %w", p.Name, err)
		}
		d, err := p.Elaborate()
		if err != nil {
			return nil, fmt.Errorf("sim bench: elaborate %s: %w", p.Name, err)
		}
		if err := tb.ElaborateChecker(); err != nil {
			return nil, fmt.Errorf("sim bench: checker %s: %w", p.Name, err)
		}
		steps := 0
		for _, sc := range tb.Scenarios {
			steps += len(sc.Steps)
		}
		fixtures = append(fixtures, fixture{tb: tb, d: d, steps: steps})
		total += steps
	}
	rep := &simReport{
		Bench:    "sim.golden_testbench_steps",
		Problems: len(probs),
		Steps:    total,
	}
	const passes = 10
	var interpSec float64
	for _, eng := range []sim.Engine{sim.EngineInterp, sim.EngineCompiled} {
		start := time.Now()
		for pass := 0; pass < passes; pass++ {
			for _, f := range fixtures {
				f.tb.Engine = eng
				res, err := f.tb.RunAgainstDesign(f.d)
				if err != nil {
					return nil, fmt.Errorf("sim bench (%s): %w", eng, err)
				}
				if !res.Pass() {
					return nil, fmt.Errorf("sim bench (%s): golden RTL failed golden testbench", eng)
				}
			}
		}
		secs := time.Since(start).Seconds()
		m := simMeasurement{
			Engine:      eng.String(),
			Seconds:     round3(secs),
			StepsPerSec: round3(float64(passes*total) / secs),
		}
		if eng == sim.EngineInterp {
			interpSec = secs
		} else if secs > 0 {
			m.Speedup = round3(interpSec / secs)
		}
		rep.Runs = append(rep.Runs, m)
		fmt.Fprintf(os.Stderr, "benchjson: sim engine=%s %.2fs (%.0f steps/s)\n", eng, secs, m.StepsPerSec)
	}
	return rep, nil
}

// simBatchedBench measures the mutant-batched engine: for every
// problem in the mix it derives a fixed-seed set of ~20 elaborable,
// simulation-clean mutants of the golden RTL and runs them all
// against the golden testbench — sequentially on the scalar compiled
// engine (the baseline AutoEval used before batching), then in
// sim.BatchInstance batches of 1, 4, 10 and 20 lanes. earlyExit is
// off so every lane executes every step and the step counts match
// the baseline exactly.
func simBatchedBench(probs []*dataset.Problem) (*batchReport, error) {
	type fixture struct {
		tb    *testbench.Testbench
		base  *sim.Design
		duts  []*sim.Design
		steps int // stimulus steps per pass per DUT
	}
	const dutsPerProblem = 20
	var fixtures []fixture
	totalSteps, totalDuts, levelized := 0, 0, 0
	for _, p := range probs {
		tb, err := testbench.Golden(p, rand.New(rand.NewSource(1)))
		if err != nil {
			return nil, fmt.Errorf("batch bench: golden %s: %w", p.Name, err)
		}
		tb.Engine = sim.EngineCompiled
		if err := tb.ElaborateChecker(); err != nil {
			return nil, fmt.Errorf("batch bench: checker %s: %w", p.Name, err)
		}
		base, err := p.Elaborate()
		if err != nil {
			return nil, fmt.Errorf("batch bench: elaborate %s: %w", p.Name, err)
		}
		mod, err := p.Module()
		if err != nil {
			return nil, fmt.Errorf("batch bench: module %s: %w", p.Name, err)
		}
		rng := rand.New(rand.NewSource(7))
		var duts []*sim.Design
		for attempt := 0; attempt < 200 && len(duts) < dutsPerProblem; attempt++ {
			mut, applied := mutate.Mutate(mod, rng, 1)
			if len(applied) == 0 {
				break
			}
			d, err := sim.ElaborateSource(verilog.PrintModule(mut), p.Top)
			if err != nil {
				continue
			}
			// Keep only mutants that simulate to completion: an
			// errored run stops mid-scenario and would skew the
			// per-step throughput comparison.
			if _, err := tb.RunAgainstDesign(d); err != nil {
				continue
			}
			duts = append(duts, d)
		}
		if len(duts) == 0 {
			continue
		}
		steps := 0
		for _, sc := range tb.Scenarios {
			steps += len(sc.Steps)
		}
		if progs, _, err := sim.CompileBatchSplit(base, duts); err == nil && progs[0].Levelized() {
			levelized++
		}
		fixtures = append(fixtures, fixture{tb: tb, base: base, duts: duts, steps: steps})
		totalSteps += steps * len(duts)
		totalDuts += len(duts)
	}
	if len(fixtures) == 0 {
		return nil, fmt.Errorf("batch bench: no problems yielded mutants")
	}
	rep := &batchReport{
		Bench:             "sim.mutant_batch_steps",
		Problems:          len(fixtures),
		Mutants:           totalDuts,
		StepsPerPass:      totalSteps,
		LevelizedProblems: levelized,
	}

	// Every configuration is timed as the sum of per-fixture minima
	// across passes: the totals are sub-second, so a single scheduler
	// hiccup anywhere in a whole-pass timing would dominate the ratio,
	// while a hiccup must recur on the same fixture in every pass to
	// survive a per-fixture minimum.
	const passes = 7
	fixMin := make([]float64, len(fixtures))
	for pass := 0; pass < passes; pass++ {
		for fi, f := range fixtures {
			f.tb.Engine = sim.EngineCompiled
			start := time.Now()
			for _, d := range f.duts {
				if _, err := f.tb.RunAgainstDesign(d); err != nil {
					return nil, fmt.Errorf("batch bench (compiled): %w", err)
				}
			}
			if secs := time.Since(start).Seconds(); pass == 0 || secs < fixMin[fi] {
				fixMin[fi] = secs
			}
		}
	}
	var baseSecs float64
	for _, s := range fixMin {
		baseSecs += s
	}
	rep.CompiledSeconds = round3(baseSecs)
	if baseSecs > 0 {
		rep.CompiledStepsPerSec = round3(float64(totalSteps) / baseSecs)
	}
	fmt.Fprintf(os.Stderr, "benchjson: sim_batched baseline compiled %.2fs/pass (%.0f steps/s/mutant)\n",
		baseSecs, rep.CompiledStepsPerSec)

	for _, batchSize := range []int{1, 4, 10, 20} {
		// Compile each group once, like the scalar engine compiles a
		// design once at elaboration; the timed region measures
		// simulation, not recompilation. The checker trace is warmed
		// untimed for the same reason the scalar baseline enters its
		// loop with a warm checker cache.
		type group struct {
			tb    *testbench.Testbench
			progs []*sim.BatchProgram
			idx   [][]int
		}
		var groups []group
		for _, f := range fixtures {
			f.tb.Engine = sim.EngineBatched
			if err := f.tb.WarmBatchTrace(f.base); err != nil {
				return nil, fmt.Errorf("batch bench: trace: %w", err)
			}
			for lo := 0; lo < len(f.duts); lo += batchSize {
				hi := lo + batchSize
				if hi > len(f.duts) {
					hi = len(f.duts)
				}
				progs, idx, err := sim.CompileBatchSplit(f.base, f.duts[lo:hi])
				if err != nil {
					return nil, fmt.Errorf("batch bench (batch=%d): %w", batchSize, err)
				}
				groups = append(groups, group{tb: f.tb, progs: progs, idx: idx})
			}
		}
		grpMin := make([]float64, len(groups))
		for pass := 0; pass < passes; pass++ {
			for gi, g := range groups {
				start := time.Now()
				outs := g.tb.RunBatchPrograms(g.progs, g.idx, false)
				if s := time.Since(start).Seconds(); pass == 0 || s < grpMin[gi] {
					grpMin[gi] = s
				}
				for _, o := range outs {
					if o.Err != nil {
						return nil, fmt.Errorf("batch bench (batch=%d): %w", batchSize, o.Err)
					}
				}
			}
		}
		var secs float64
		for _, s := range grpMin {
			secs += s
		}
		m := batchMeasurement{Batch: batchSize, Seconds: round3(secs)}
		if secs > 0 {
			m.StepsPerSecMutant = round3(float64(totalSteps) / secs)
			if baseSecs > 0 {
				m.SpeedupVsCompiled = round3(baseSecs / secs)
			}
		}
		rep.Runs = append(rep.Runs, m)
		fmt.Fprintf(os.Stderr, "benchjson: sim_batched batch=%d %.2fs (%.0f steps/s/mutant, %.2fx compiled)\n",
			batchSize, secs, m.StepsPerSecMutant, m.SpeedupVsCompiled)
	}
	return rep, nil
}

// eventsBench measures the cost of the Client/Job event machinery on
// the Table-I workload: cells/sec with no subscriber attached versus
// a subscriber draining and NDJSON-marshaling every event (the
// correctbenchd streaming path). Problem names are passed through the
// public spec, so this also exercises the facade's resolution path.
func eventsBench(probs []*dataset.Problem, reps int, seed int64) (*eventsReport, error) {
	names := make([]string, len(probs))
	for i, p := range probs {
		names[i] = p.Name
	}
	spec := correctbench.ExperimentSpec{Seed: seed, Reps: reps, Problems: names}
	cells := len(harness.AllMethods()) * max(reps, 1) * len(probs)
	rep := &eventsReport{Bench: "client.Submit/table1_events", Cells: cells}

	for _, withSub := range []bool{false, true} {
		// A fresh client per run: shared fixture caches across runs
		// would make the second setting measure cache hits, not event
		// overhead.
		client := correctbench.NewClient()
		start := time.Now()
		job, err := client.Submit(context.Background(), spec)
		if err != nil {
			return nil, err
		}
		drained := make(chan error, 1)
		if withSub {
			go func() {
				for ev := range job.Events() {
					if _, err := correctbench.MarshalEvent(ev); err != nil {
						drained <- err
						return
					}
				}
				drained <- nil
			}()
		}
		if _, err := job.Wait(context.Background()); err != nil {
			return nil, err
		}
		if withSub {
			if err := <-drained; err != nil {
				return nil, err
			}
		}
		secs := time.Since(start).Seconds()
		mode := "no_subscriber"
		if withSub {
			mode = "subscriber"
		}
		m := eventsMeasurement{Mode: mode, Seconds: round3(secs)}
		if secs > 0 {
			m.CellsPerSec = round3(float64(cells) / secs)
		}
		rep.Runs = append(rep.Runs, m)
		fmt.Fprintf(os.Stderr, "benchjson: events mode=%s %.2fs (%.1f cells/s)\n", mode, secs, m.CellsPerSec)
	}
	if base := rep.Runs[0].Seconds; base > 0 {
		rep.OverheadPct = round3((rep.Runs[1].Seconds - base) / base * 100)
	}
	return rep, nil
}

// obsBench measures the cost of cell tracing on the Table-I workload:
// cells/sec with spec.NoTrace set versus the default traced submit
// (per-cell collectors, span assembly, histogram updates). Like
// eventsBench each mode gets a fresh client so shared fixture caches
// don't turn the second run into a cache benchmark.
func obsBench(probs []*dataset.Problem, reps int, seed int64) (*obsReport, error) {
	names := make([]string, len(probs))
	for i, p := range probs {
		names[i] = p.Name
	}
	cells := len(harness.AllMethods()) * max(reps, 1) * len(probs)
	rep := &obsReport{Bench: "client.Submit/table1_tracing", Cells: cells}

	for _, traced := range []bool{false, true} {
		spec := correctbench.ExperimentSpec{Seed: seed, Reps: reps, Problems: names, NoTrace: !traced}
		client := correctbench.NewClient()
		start := time.Now()
		job, err := client.Submit(context.Background(), spec)
		if err != nil {
			return nil, err
		}
		if _, err := job.Wait(context.Background()); err != nil {
			return nil, err
		}
		secs := time.Since(start).Seconds()
		mode := "no_trace"
		if traced {
			mode = "traced"
			for _, ct := range job.Trace() {
				rep.TracedSpans += len(ct.Spans)
			}
		}
		m := obsMeasurement{Mode: mode, Seconds: round3(secs)}
		if secs > 0 {
			m.CellsPerSec = round3(float64(cells) / secs)
		}
		rep.Runs = append(rep.Runs, m)
		fmt.Fprintf(os.Stderr, "benchjson: observability mode=%s %.2fs (%.1f cells/s)\n", mode, secs, m.CellsPerSec)
	}
	if base := rep.Runs[0].Seconds; base > 0 {
		rep.OverheadPct = round3((rep.Runs[1].Seconds - base) / base * 100)
	}
	rep.OverheadUnder5Pct = rep.OverheadPct < 5
	if !rep.OverheadUnder5Pct {
		fmt.Fprintf(os.Stderr, "benchjson: WARNING: tracing overhead %.1f%% exceeds the 5%% observability budget\n", rep.OverheadPct)
	}
	if rep.TracedSpans == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: WARNING: traced run produced zero spans — tracing instrumentation regression")
	}
	return rep, nil
}

// storeBench measures the result store on the Table-I workload. Cold:
// a fresh disk store, every cell simulated and written through
// (fsync'd). Warm: the same directory reopened by a fresh client —
// the shard-load plus full-replay path a resumed or repeated
// experiment takes. The two tables must match byte for byte.
func storeBench(probs []*dataset.Problem, reps int, seed int64) (*storeReport, error) {
	dir, err := os.MkdirTemp("", "benchjson-store")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	names := make([]string, len(probs))
	for i, p := range probs {
		names[i] = p.Name
	}
	spec := correctbench.ExperimentSpec{Seed: seed, Reps: reps, Problems: names}
	cells := len(harness.AllMethods()) * max(reps, 1) * len(probs)
	rep := &storeReport{Bench: "client.Submit/table1_store", Cells: cells}

	var tables [2]string
	var rawSecs [2]float64
	for i, mode := range []string{"cold", "warm"} {
		st, err := correctbench.OpenDiskStore(dir)
		if err != nil {
			return nil, err
		}
		client := correctbench.NewClient(correctbench.WithStore(st))
		start := time.Now()
		job, err := client.Submit(context.Background(), spec)
		if err != nil {
			return nil, err
		}
		exp, err := job.Wait(context.Background())
		if err != nil {
			return nil, err
		}
		secs := time.Since(start).Seconds()
		rawSecs[i] = secs
		tables[i] = exp.Table1()
		snap := job.Snapshot()
		// Warm runs can finish in well under a millisecond; round3
		// would record "seconds": 0 next to a finite cells_per_sec.
		// Microsecond resolution keeps the pair consistent, and if the
		// duration still rounds to zero the rate is omitted rather
		// than derived from an unrepresentable denominator.
		m := storeMeasurement{
			Mode: mode, Seconds: round6(secs),
			StoreHits: snap.StoreHits, StoreMisses: snap.StoreMisses,
		}
		if m.Seconds > 0 {
			m.CellsPerSec = round3(float64(cells) / secs)
		}
		rep.Runs = append(rep.Runs, m)
		if err := client.Close(context.Background()); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "benchjson: store mode=%s %.2fs (%.1f cells/s, %d hits / %d misses)\n",
			mode, secs, m.CellsPerSec, snap.StoreHits, snap.StoreMisses)
	}
	rep.FullyCached = rep.Runs[1].StoreHits == cells && rep.Runs[1].StoreMisses == 0
	if !rep.FullyCached {
		fmt.Fprintln(os.Stderr, "benchjson: WARNING: warm store run simulated cells — cell-key regression")
	}
	if tables[0] != tables[1] {
		fmt.Fprintln(os.Stderr, "benchjson: WARNING: warm store run produced a different Table I — store regression")
		rep.FullyCached = false
	}
	// From the unrounded values: a fully warm run is typically
	// sub-millisecond, far below the JSON's 1ms display resolution.
	if rawSecs[1] > 0 {
		rep.WarmSpeedup = round3(rawSecs[0] / rawSecs[1])
	}
	return rep, nil
}

// robustnessBench runs the Table-I workload against an in-memory
// result store three times: clean, under a seeded transient-fault
// schedule (write errors, lost acks, forced read misses), and with
// the store dying a few operations in (the breaker must degrade the
// run to cache-bypass mode). All three runs start cold and must
// produce byte-identical tables — faults may cost retries and cache
// efficiency, never correctness.
func robustnessBench(probs []*dataset.Problem, reps int, seed int64) (*robustnessReport, error) {
	cfgFor := func(st store.Store) harness.Config {
		return harness.Config{Reps: reps, Seed: seed, Problems: probs, Store: st}
	}
	cells := len(harness.AllMethods()) * max(reps, 1) * len(probs)
	rep := &robustnessReport{Bench: "harness.Run/table1_faulted_store", Cells: cells, TablesIdentical: true}

	schedules := []struct {
		name string
		plan *faults.Plan
	}{
		{name: "clean"},
		{name: "transient_faults", plan: &faults.Plan{
			Seed: seed, PutErrorRate: 0.3, LostAckRate: 0.1, GetMissRate: 0.2,
		}},
		{name: "store_dies", plan: &faults.Plan{Seed: seed, FailAfterOps: 5}},
	}
	var refTable string
	for i, sched := range schedules {
		var st store.Store = store.NewMemory(0)
		var fs *faults.Store
		if sched.plan != nil {
			fs = faults.Wrap(st, *sched.plan)
			st = fs
		}
		start := time.Now()
		res, err := harness.Run(cfgFor(st))
		if err != nil {
			return nil, fmt.Errorf("robustness bench (%s): %w", sched.name, err)
		}
		secs := time.Since(start).Seconds()
		table := res.Table1()
		if i == 0 {
			refTable = table
		} else if table != refTable {
			rep.TablesIdentical = false
		}
		m := robustnessMeasurement{
			Schedule:     sched.name,
			Seconds:      round3(secs),
			PutRetries:   res.Store.PutRetries,
			PutDrops:     res.Store.PutDrops,
			BreakerTrips: res.Store.BreakerTrips,
			Degraded:     res.Store.Degraded,
		}
		if fs != nil {
			c := fs.Counts()
			m.InjectedOps = c.PutErrors + c.LostAcks + c.GetMisses + c.DeadOps
		}
		rep.Runs = append(rep.Runs, m)
		fmt.Fprintf(os.Stderr, "benchjson: robustness schedule=%s %.2fs (injected=%d retries=%d drops=%d degraded=%v)\n",
			sched.name, secs, m.InjectedOps, m.PutRetries, m.PutDrops, m.Degraded)
	}
	if !rep.TablesIdentical {
		fmt.Fprintln(os.Stderr, "benchjson: WARNING: faulted runs produced a different Table I — fault-tolerance regression")
	}
	return rep, nil
}

// benchPipeListener hands net.Pipe server ends to a worker's accept
// loop, so the fleet benchmark exercises the real coordinator and
// frame protocol without opening sockets.
type benchPipeListener struct {
	ch     chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func newBenchPipeListener() *benchPipeListener {
	return &benchPipeListener{ch: make(chan net.Conn, 16), closed: make(chan struct{})}
}

func (l *benchPipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *benchPipeListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

type benchPipeAddr string

func (a benchPipeAddr) Network() string     { return "pipe" }
func (a benchPipeAddr) String() string      { return string(a) }
func (l *benchPipeListener) Addr() net.Addr { return benchPipeAddr("bench") }

// fleetBench runs the Table-I workload through each executor: the
// in-process pool, then in-process remote fleets of 1 and 4 worker
// nodes. Table I must come out byte-identical everywhere; the numbers
// record what the distribution machinery costs on a single machine
// (an upper bound on protocol overhead — real fleets add network
// latency but also add cores).
func fleetBench(probs []*dataset.Problem, reps int, seed int64) (*fleetReport, error) {
	names := make([]string, len(probs))
	for i, p := range probs {
		names[i] = p.Name
	}
	spec := correctbench.ExperimentSpec{Seed: seed, Reps: reps, Workers: 4, Problems: names}
	cells := len(harness.AllMethods()) * max(reps, 1) * len(probs)
	rep := &fleetReport{Bench: "client.Submit/table1_fleet", Cells: cells, TablesIdentical: true}

	var refTable string
	for _, nodes := range []int{0, 1, 4} {
		var opts []correctbench.ClientOption
		var rex *correctbench.RemoteExecutor
		var lns []*benchPipeListener
		if nodes > 0 {
			addrs := make([]string, nodes)
			byAddr := map[string]*benchPipeListener{}
			for i := range addrs {
				addrs[i] = fmt.Sprintf("bench-node-%d:1", i)
				ln := newBenchPipeListener()
				byAddr[addrs[i]] = ln
				lns = append(lns, ln)
				go correctbench.NewFleetWorker(nil, 4).Serve(ln)
			}
			var err error
			rex, err = correctbench.NewRemoteExecutor(addrs, correctbench.RemoteOptions{
				// Every node shares this process's cores (CI pins
				// GOMAXPROCS=1), so cell latency balloons with node
				// count. The production straggler/health thresholds
				// would misfire and measure speculative duplication
				// instead of dispatch overhead — slacken them.
				Straggler:  2 * time.Minute,
				ProbeEvery: time.Second,
				MaxMissed:  120,
				Dial: func(ctx context.Context, addr string) (net.Conn, error) {
					ln := byAddr[addr]
					if ln == nil {
						return nil, fmt.Errorf("unknown bench node %s", addr)
					}
					c1, c2 := net.Pipe()
					select {
					case ln.ch <- c2:
						return c1, nil
					case <-ln.closed:
						c1.Close()
						c2.Close()
						return nil, net.ErrClosed
					}
				},
			})
			if err != nil {
				return nil, err
			}
			opts = append(opts, correctbench.WithExecutor(rex))
		}

		// A fresh client per executor: shared fixture caches would
		// make later runs measure cache hits, not dispatch overhead.
		client := correctbench.NewClient(opts...)
		start := time.Now()
		job, err := client.Submit(context.Background(), spec)
		if err != nil {
			return nil, err
		}
		exp, err := job.Wait(context.Background())
		if err != nil {
			return nil, err
		}
		secs := time.Since(start).Seconds()

		mode := "local"
		if nodes > 0 {
			mode = fmt.Sprintf("remote_%d_node", nodes)
		}
		m := fleetMeasurement{Executor: mode, Nodes: nodes, Seconds: round3(secs)}
		if secs > 0 {
			m.CellsPerSec = round3(float64(cells) / secs)
		}
		if rex != nil {
			for _, ns := range rex.Stats() {
				m.Stolen += ns.Stolen
				m.Requeued += ns.Requeued
			}
		}
		for _, ln := range lns {
			ln.Close()
		}
		if table := exp.Table1(); refTable == "" {
			refTable = table
		} else if table != refTable {
			rep.TablesIdentical = false
		}
		rep.Runs = append(rep.Runs, m)
		fmt.Fprintf(os.Stderr, "benchjson: fleet executor=%s %.2fs (%.1f cells/s, stolen=%d requeued=%d)\n",
			mode, secs, m.CellsPerSec, m.Stolen, m.Requeued)
	}
	if !rep.TablesIdentical {
		fmt.Fprintln(os.Stderr, "benchjson: WARNING: remote fleets produced a different Table I — distribution regression")
	}
	return rep, nil
}

// staticBench sweeps the module-level analysis over every golden RTL
// and screens a fixed-seed batch of mutation candidates per problem,
// mirroring what AutoEval's generator sees.
func staticBench() (*staticReport, error) {
	all := dataset.All()
	rep := &staticReport{
		Bench:    "vstatic.golden_sweep",
		Problems: len(all),
	}
	for _, p := range all {
		rs, err := vstatic.AnalyzeSource(p.Source, p.Top)
		if err != nil {
			return nil, fmt.Errorf("static bench: %s: %w", p.Name, err)
		}
		r := rs[0]
		if r.Levelizable {
			rep.LevelizedProblems++
		}
		rep.CombProcs += r.CombProcs
		rep.StaticCombProcs += r.StaticCombProcs
		rep.Diagnostics += len(r.Diags)

		mod, err := p.Module()
		if err != nil {
			return nil, fmt.Errorf("static bench: module %s: %w", p.Name, err)
		}
		screen := mutate.NewScreen(mod)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 20; i++ {
			mut, applied := mutate.Mutate(mod, rng, 1)
			if len(applied) == 0 {
				break
			}
			screen.Reject(mut)
		}
		rep.Screen.Add(screen.Stats)
	}
	if rep.Problems > 0 {
		rep.LevelizedPct = round3(float64(rep.LevelizedProblems) / float64(rep.Problems) * 100)
	}
	fmt.Fprintf(os.Stderr, "benchjson: static levelized=%d/%d (%.1f%%) diags=%d prescreen candidates=%d identical=%d flagged=%d\n",
		rep.LevelizedProblems, rep.Problems, rep.LevelizedPct, rep.Diagnostics,
		rep.Screen.Candidates, rep.Screen.Identical, rep.Screen.Flagged)
	return rep, nil
}

func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }

func round6(v float64) float64 { return float64(int(v*1_000_000+0.5)) / 1_000_000 }

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
