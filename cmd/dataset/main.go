// Command dataset lists and dumps the 156-problem benchmark suite.
//
// Usage:
//
//	dataset -list
//	dataset -dump shift18
package main

import (
	"flag"
	"fmt"
	"os"

	"correctbench/internal/dataset"
)

func main() {
	var (
		list = flag.Bool("list", false, "list all problems")
		dump = flag.String("dump", "", "print one problem's spec and golden RTL")
	)
	flag.Parse()
	switch {
	case *list:
		fmt.Printf("%-16s %-4s %-5s %s\n", "NAME", "KIND", "DIFF", "SPEC")
		for _, p := range dataset.All() {
			spec := p.Spec
			if len(spec) > 72 {
				spec = spec[:69] + "..."
			}
			fmt.Printf("%-16s %-4s %-5d %s\n", p.Name, p.Kind, p.Difficulty, spec)
		}
		cmb, seq := dataset.OfKind(dataset.CMB), dataset.OfKind(dataset.SEQ)
		fmt.Printf("\n%d problems: %d CMB, %d SEQ\n", len(dataset.All()), len(cmb), len(seq))
	case *dump != "":
		p := dataset.ByName(*dump)
		if p == nil {
			fmt.Fprintf(os.Stderr, "dataset: unknown problem %q\n", *dump)
			os.Exit(1)
		}
		fmt.Printf("name: %s\nkind: %s\ndifficulty: %d\nclock: %q reset: %q\n\nSPEC\n----\n%s\n\nGOLDEN RTL\n----------\n%s",
			p.Name, p.Kind, p.Difficulty, p.Clock, p.Reset, p.Spec, p.Source)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
