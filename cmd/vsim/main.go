// Command vsim is the standalone Verilog simulator built for this
// reproduction (the Icarus Verilog stand-in): it parses a source file,
// elaborates the requested top module and executes its initial blocks
// and delay-driven always blocks under event-driven time, printing
// $display output.
//
// Usage:
//
//	vsim -top tb design.v [more.v ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"correctbench/internal/sim"
	"correctbench/internal/verilog"
)

func main() {
	var (
		top     = flag.String("top", "", "top module (default: last module in the input)")
		maxTime = flag.Uint64("maxtime", 1_000_000, "simulation time limit")
		dump    = flag.Bool("ports", false, "print final port values after simulation")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: vsim [-top name] file.v ...")
		os.Exit(2)
	}
	var srcs []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		srcs = append(srcs, string(data))
	}
	file, err := verilog.Parse(strings.Join(srcs, "\n"))
	if err != nil {
		fail(err)
	}
	topName := *top
	if topName == "" {
		topName = file.Modules[len(file.Modules)-1].Name
	}
	design, err := sim.Elaborate(file, topName)
	if err != nil {
		fail(err)
	}
	inst := sim.NewInstance(design)
	inst.Stdout = os.Stdout
	if err := sim.Run(inst, *maxTime); err != nil {
		fail(err)
	}
	if *dump {
		for _, p := range design.Ports {
			v, err := inst.Get(p.Name)
			if err != nil {
				continue
			}
			fmt.Printf("%s %s = %s\n", p.Dir, p.Name, v)
		}
	}
	fmt.Fprintf(os.Stderr, "vsim: finished at t=%d (finish=%v)\n", inst.Now, inst.Finished)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vsim:", err)
	os.Exit(1)
}
