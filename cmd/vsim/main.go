// Command vsim is the standalone Verilog simulator built for this
// reproduction (the Icarus Verilog stand-in): it parses a source file,
// elaborates the requested top module and executes its initial blocks
// and delay-driven always blocks under event-driven time, printing
// $display output.
//
// Usage:
//
//	vsim -top tb design.v [more.v ...]
//
// Two run modes:
//
//   - timed (default): executes initial blocks and delay-driven always
//     blocks until -maxtime, like a conventional simulator run.
//   - cycle (-clock C -cycles N): zeroes the inputs and toggles the
//     named clock N times, reporting steps/s. This is the mode the
//     evaluation harness exercises, and the only mode the batched
//     engine supports (-engine batched -batch L runs L identical lanes
//     of the design through one sim.BatchInstance).
//
// The -engine flag picks the simulation engine (auto|interp|compiled|
// batched); auto follows sim.DefaultEngine.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"correctbench/internal/sim"
	"correctbench/internal/verilog"
)

func main() {
	var (
		top     = flag.String("top", "", "top module (default: last module in the input)")
		maxTime = flag.Uint64("maxtime", 1_000_000, "simulation time limit (timed mode)")
		dump    = flag.Bool("ports", false, "print final port values after simulation")
		engine  = flag.String("engine", "auto", "simulation engine: auto|interp|compiled|batched")
		clock   = flag.String("clock", "", "clock port name (enables cycle mode with -cycles)")
		cycles  = flag.Int("cycles", 0, "run N clock cycles instead of event-driven time")
		batch   = flag.Int("batch", 10, "lane count for -engine batched (cycle mode)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: vsim [-top name] [-engine E] [-clock C -cycles N] file.v ...")
		os.Exit(2)
	}
	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		fail(err)
	}
	var srcs []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		srcs = append(srcs, string(data))
	}
	file, err := verilog.Parse(strings.Join(srcs, "\n"))
	if err != nil {
		fail(err)
	}
	topName := *top
	if topName == "" {
		topName = file.Modules[len(file.Modules)-1].Name
	}
	design, err := sim.Elaborate(file, topName)
	if err != nil {
		fail(err)
	}

	if *cycles > 0 || *clock != "" {
		runCycles(design, eng, *clock, *cycles, *batch, *dump)
		return
	}
	if eng == sim.EngineBatched {
		fail(errors.New("the batched engine has no event-driven time; use cycle mode (-clock C -cycles N, optionally -batch L)"))
	}

	inst := sim.NewInstanceEngine(design, eng)
	inst.Stdout = os.Stdout
	if err := sim.Run(inst, *maxTime); err != nil {
		fail(err)
	}
	if *dump {
		for _, p := range design.Ports {
			v, err := inst.Get(p.Name)
			if err != nil {
				continue
			}
			fmt.Printf("%s %s = %s\n", p.Dir, p.Name, v)
		}
	}
	fmt.Fprintf(os.Stderr, "vsim: finished at t=%d (finish=%v)\n", inst.Now, inst.Finished)
}

// runCycles zeroes the inputs and drives the named clock for the
// requested cycle count, printing throughput as steps/s (one step =
// one cycle of one lane; scalar engines are a single lane).
func runCycles(design *sim.Design, eng sim.Engine, clock string, cycles, batch int, dump bool) {
	if clock == "" || cycles <= 0 {
		fail(errors.New("cycle mode needs both -clock and -cycles"))
	}
	start := time.Now()
	lanes := 1
	sched := "event"
	if eng == sim.EngineBatched {
		if batch < 1 {
			fail(errors.New("-batch must be at least 1"))
		}
		variants := make([]*sim.Design, batch)
		for i := range variants {
			variants[i] = design
		}
		prog, err := sim.CompileBatch(design, variants)
		if err != nil {
			fail(err)
		}
		b := sim.NewBatchInstance(prog)
		if err := b.ZeroInputs(); err != nil {
			fail(err)
		}
		if err := b.TickN(clock, cycles); err != nil {
			fail(err)
		}
		for lane := 0; lane < b.Lanes(); lane++ {
			if err := b.LaneErr(lane); err != nil {
				fail(fmt.Errorf("lane %d: %w", lane, err))
			}
		}
		lanes = prog.Lanes()
		if prog.Levelized() {
			sched = "levelized"
		}
		if dump {
			for _, p := range design.Ports {
				v, err := b.Get(p.Name, 0)
				if err != nil {
					continue
				}
				fmt.Printf("%s %s = %s\n", p.Dir, p.Name, v)
			}
		}
	} else {
		inst := sim.NewInstanceEngine(design, eng)
		inst.Stdout = os.Stdout
		if err := inst.ZeroInputs(); err != nil {
			fail(err)
		}
		for i := 0; i < cycles; i++ {
			if err := inst.Tick(clock); err != nil {
				fail(err)
			}
		}
		if dump {
			for _, p := range design.Ports {
				v, err := inst.Get(p.Name)
				if err != nil {
					continue
				}
				fmt.Printf("%s %s = %s\n", p.Dir, p.Name, v)
			}
		}
	}
	secs := time.Since(start).Seconds()
	steps := float64(cycles) * float64(lanes)
	rate := "inf"
	if secs > 0 {
		rate = fmt.Sprintf("%.0f", steps/secs)
	}
	fmt.Fprintf(os.Stderr, "vsim: engine %s (%s scheduling): %d cycles x %d lane(s) in %.3fs — %s steps/s\n",
		eng, sched, cycles, lanes, secs, rate)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vsim:", err)
	os.Exit(1)
}
