// Command llms reproduces Fig. 7: the three generation methods
// evaluated under each LLM profile (gpt-4o, claude-3.5-sonnet,
// gpt-4o-mini), rendered as stacked text bars of exact-grade shares.
//
// Usage:
//
//	llms -reps 1 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"

	"correctbench/internal/harness"
	"correctbench/internal/llm"
)

func main() {
	var (
		reps    = flag.Int("reps", 1, "repetitions per profile (the paper ran Claude once)")
		seed    = flag.Int64("seed", 42, "master random seed")
		workers = flag.Int("workers", 0, "concurrent experiment cells (0: all CPUs, 1: sequential; results are identical either way)")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	for _, prof := range llm.Profiles() {
		res, err := harness.Run(harness.Config{
			Profile: prof, Reps: *reps, Seed: *seed, Workers: *workers, Progress: progress,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "llms:", err)
			os.Exit(1)
		}
		fmt.Println(harness.RenderFig7(prof.Name, res.Fig7Rows()))
	}
}
