// Command llms reproduces Fig. 7: the three generation methods
// evaluated under each LLM profile (gpt-4o, claude-3.5-sonnet,
// gpt-4o-mini), rendered as stacked text bars of exact-grade shares.
// One experiment job is submitted per profile through the Client API;
// Ctrl-C cancels the running job cleanly.
//
// Usage:
//
//	llms -reps 1 -seed 42
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"correctbench"
	"correctbench/internal/harness"
)

func main() {
	var (
		reps    = flag.Int("reps", 1, "repetitions per profile (the paper ran Claude once)")
		seed    = flag.Int64("seed", 42, "master random seed")
		workers = flag.Int("workers", 0, "concurrent experiment cells (0: all CPUs, 1: sequential; results are identical either way)")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := correctbench.NewClient()
	for _, name := range correctbench.LLMNames() {
		job, err := client.Submit(ctx, correctbench.ExperimentSpec{
			LLM: name, Reps: *reps, Seed: *seed, Workers: *workers,
		})
		exitOn(err)
		for ev := range job.Events() {
			if g, ok := ev.(correctbench.MethodRepDone); ok && !*quiet {
				fmt.Fprintf(os.Stderr, "%s rep %d/%d done (%d tasks)\n", g.Method, g.Rep+1, g.Reps, g.Tasks)
			}
		}
		res, err := job.Wait(ctx)
		exitOn(err)
		fmt.Println(harness.RenderFig7(name, res.Fig7Rows()))
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "llms:", err)
		os.Exit(1)
	}
}
