// Command storectl manages a correctbench result-store directory (the
// -store-dir of correctbenchd / correctbench): per-problem shard
// files of content-addressed evaluation cells.
//
// Usage:
//
//	storectl -dir DIR list            # per-shard entries/records/health
//	storectl -dir DIR verify          # scan everything, exit 1 on damage
//	storectl -dir DIR gc              # compact shards, drop stale/corrupt/dupes
//	storectl -dir DIR gc -dry-run     # report what gc would reclaim
//
// list and verify never modify the directory. gc rewrites each
// healthy shard atomically (temp file + rename) with exactly one
// record per cell key and deletes shards whose schema version is
// stale; it must not race a live writer — stop correctbenchd (its
// SIGTERM drain flushes the store) before collecting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"correctbench/internal/store"
)

func main() {
	var (
		dir  = flag.String("dir", "", "result-store directory (required)")
		dry  = flag.Bool("dry-run", false, "gc: only report what would be reclaimed")
		asJS = flag.Bool("json", false, "machine-readable output")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: storectl -dir DIR [flags] {list|verify|gc}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *dir == "" || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	switch cmd := flag.Arg(0); cmd {
	case "list":
		err = list(*dir, *asJS, false)
	case "verify":
		err = list(*dir, *asJS, true)
	case "gc":
		err = gc(*dir, *dry, *asJS)
	default:
		fmt.Fprintf(os.Stderr, "storectl: unknown command %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "storectl:", err)
		os.Exit(1)
	}
}

// list prints every shard's health; with strict it exits non-zero
// when any shard carries damage (verify).
func list(dir string, asJSON, strict bool) error {
	reps, err := store.Inspect(dir)
	if err != nil {
		return err
	}
	if asJSON {
		return writeJSON(reps)
	}
	var entries, records, corrupt, stale int
	var bytes int64
	fmt.Printf("%-28s %-12s %8s %8s %8s %10s  %s\n", "SHARD", "PROBLEM", "ENTRIES", "RECORDS", "CORRUPT", "BYTES", "STATUS")
	for _, r := range reps {
		status := "ok"
		switch {
		case r.Stale:
			status = fmt.Sprintf("STALE (version %d)", r.Version)
			stale++
		case r.Corrupt > 0:
			status = "DAMAGED"
		}
		fmt.Printf("%-28s %-12s %8d %8d %8d %10d  %s\n",
			r.File, r.Problem, r.Entries, r.Records, r.Corrupt, r.Bytes, status)
		entries += r.Entries
		records += r.Records
		corrupt += r.Corrupt
		bytes += r.Bytes
	}
	fmt.Printf("total: %d shards, %d cells (%d records), %d corrupt, %d stale, %d bytes\n",
		len(reps), entries, records, corrupt, stale, bytes)
	if strict && (corrupt > 0 || stale > 0 || records > entries) {
		return fmt.Errorf("verify: %d corrupt records, %d stale shards, %d duplicate records — run gc",
			corrupt, stale, records-entries)
	}
	if strict {
		fmt.Println("verify: clean")
	}
	return nil
}

func gc(dir string, dry, asJSON bool) error {
	if dry {
		reps, err := store.Inspect(dir)
		if err != nil {
			return err
		}
		var res store.CompactResult
		for _, r := range reps {
			if r.Stale {
				res.StaleShardsRemoved++
				continue
			}
			res.Shards++
			res.DroppedCorrupt += r.Corrupt
			res.DroppedDuplicates += r.Records - r.Entries
		}
		if asJSON {
			return writeJSON(res)
		}
		fmt.Printf("gc (dry run): would drop %d stale shards, %d corrupt records, %d duplicates across %d shards\n",
			res.StaleShardsRemoved, res.DroppedCorrupt, res.DroppedDuplicates, res.Shards)
		return nil
	}
	res, err := store.Compact(dir)
	if err != nil {
		return err
	}
	if asJSON {
		return writeJSON(res)
	}
	fmt.Printf("gc: %d shards compacted, %d stale shards removed, %d corrupt records and %d duplicates dropped, %d -> %d bytes\n",
		res.Shards, res.StaleShardsRemoved, res.DroppedCorrupt, res.DroppedDuplicates, res.BytesBefore, res.BytesAfter)
	return nil
}

func writeJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
