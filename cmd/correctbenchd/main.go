// Command correctbenchd serves the CorrectBench evaluation pipeline
// over HTTP: experiments are submitted as jobs, progress streams as
// NDJSON events, and results are queried as snapshots. It is the
// service front end of the correctbench.Client/Job API — the same
// contract, the same byte-reproducible event streams.
//
// With -store-dir the service keeps a persistent content-addressed
// result store: every finished experiment cell is written through to
// disk, an identical spec resubmitted later (including after a crash
// or rolling restart) replays the finished cells and simulates only
// the remainder, and SIGTERM drains in-flight jobs and flushes the
// store before the listener shuts down.
//
// The daemon ships with admission control on by default: bounded
// concurrent jobs globally (-max-jobs) and per client
// (-max-jobs-per-client), a per-client token-bucket rate limit on
// submit/grade (-rate/-burst), a grading request timeout
// (-request-timeout), and request body caps (-max-body-bytes).
// Refused work is answered with 429 + Retry-After (never queued), and
// a store that errors mid-job degrades that job to cache-bypass mode
// instead of failing it — see the README's "Operations & fault
// tolerance" section.
//
// The daemon also runs as a fleet: worker processes started with
// -worker serve experiment cells over the fleet protocol instead of
// HTTP, and a coordinator started with -peers shards every job's
// cells across them by content address — with health probing, work
// stealing and reassignment, so a job survives the loss of any worker
// mid-run with byte-identical output (see the README's "Fleet
// deployment" section). A worker receiving SIGTERM drains gracefully:
// it notifies its coordinators, which reassign its in-flight cells
// immediately instead of waiting for probes to time out.
//
// Usage:
//
//	correctbenchd -addr :8080
//	correctbenchd -addr :8080 -store-dir /var/lib/correctbench
//	correctbenchd -worker -addr :9001            # fleet worker node
//	correctbenchd -addr :8080 -peers :9001,:9002 # fleet coordinator
//	correctbenchd -selfcheck        # start, drive one experiment over
//	                                # HTTP, verify against in-process,
//	                                # then prove a warm resubmit
//	                                # simulates zero cells
//
// Endpoints:
//
//	POST   /v1/experiments          submit (add "stream": true for NDJSON);
//	                                resume-by-spec when a store is configured
//	GET    /v1/experiments/{id}     snapshot (incl. store_hits/store_misses)
//	GET    /v1/experiments/{id}/events  NDJSON stream (replay + live)
//	DELETE /v1/experiments/{id}     cancel
//	GET    /v1/problems             dataset listing
//	GET    /v1/llms, /v1/criteria   stable name lists
//	POST   /v1/grade                grade a testbench (or generate+grade)
//	GET    /v1/store/stats          result-store counters
//	GET    /metrics                 Prometheus text exposition (gauges,
//	                                counters, phase latency summaries)
//	GET    /v1/experiments/{id}/trace  per-cell span trees as NDJSON
//	                                   (render with cmd/traceview)
//
// With -pprof the standard net/http/pprof profiling handlers are
// mounted under /debug/pprof/ on the same listener. Off by default:
// profiles expose internals and cost CPU to capture, so the surface is
// strictly opt-in.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"correctbench"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		storeDir  = flag.String("store-dir", "", "directory for the persistent result store (empty: no store; completed cells are then never reused across restarts)")
		selfcheck = flag.Bool("selfcheck", false, "start an ephemeral server, run a 2-problem experiment over HTTP, compare with the in-process run, prove a warm resubmit replays every cell from the store, and exit")
		withPprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the same listener (opt-in profiling surface)")

		worker      = flag.Bool("worker", false, "serve experiment cells to fleet coordinators on -addr instead of HTTP; -store-dir then becomes the node's local replay cache (one directory per worker — disk stores are single-writer)")
		peers       = flag.String("peers", "", "comma-separated fleet worker addresses; when set, every job's cells are sharded across these nodes instead of the in-process pool")
		cellWorkers = flag.Int("cell-workers", 0, "max concurrently executing cells in -worker mode (0: all CPUs)")

		maxJobs       = flag.Int("max-jobs", 16, "max concurrently running experiments across all clients; over the cap submits get 429 + Retry-After (0: unlimited)")
		maxJobsClient = flag.Int("max-jobs-per-client", 4, "max concurrently running experiments per client, keyed by X-Client-ID or remote host (0: unlimited)")
		rate          = flag.Float64("rate", 5, "per-client token-bucket rate for submit/grade, requests per second (0: unlimited)")
		burst         = flag.Int("burst", 10, "per-client token-bucket burst for submit/grade")
		reqTimeout    = flag.Duration("request-timeout", 5*time.Minute, "per-request timeout for synchronous grading work; exceeding it answers 504 (0: none)")
		maxBody       = flag.Int64("max-body-bytes", 8<<20, "request body cap for submit/grade; overflow answers 413")
		retryAfter    = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	)
	flag.Parse()

	if *selfcheck {
		if err := runSelfcheck(); err != nil {
			fmt.Fprintln(os.Stderr, "correctbenchd: selfcheck FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("correctbenchd: selfcheck ok")
		return
	}

	if *worker {
		if err := runWorker(*addr, *storeDir, *cellWorkers); err != nil {
			fmt.Fprintln(os.Stderr, "correctbenchd:", err)
			os.Exit(1)
		}
		return
	}

	var opts []correctbench.ClientOption
	if *peers != "" {
		var addrs []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				addrs = append(addrs, p)
			}
		}
		rex, err := correctbench.NewRemoteExecutor(addrs, correctbench.RemoteOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "correctbenchd:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "correctbenchd: fleet coordinator over %d workers: %s\n", len(addrs), strings.Join(addrs, ", "))
		opts = append(opts, correctbench.WithExecutor(rex))
	}
	if *storeDir != "" {
		st, err := correctbench.OpenDiskStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "correctbenchd:", err)
			os.Exit(1)
		}
		stats := st.Stats()
		fmt.Fprintf(os.Stderr, "correctbenchd: result store %s: %d cells in %d shards", *storeDir, stats.Entries, stats.Shards)
		if stats.CorruptRecords > 0 || stats.StaleShards > 0 {
			fmt.Fprintf(os.Stderr, " (skipped %d corrupt records, %d stale shards — run storectl gc)", stats.CorruptRecords, stats.StaleShards)
		}
		fmt.Fprintln(os.Stderr)
		opts = append(opts, correctbench.WithStore(st))
	}
	client := correctbench.NewClient(opts...)

	limits := correctbench.Limits{
		MaxActiveJobs:    *maxJobs,
		MaxJobsPerClient: *maxJobsClient,
		RatePerSec:       *rate,
		Burst:            *burst,
		RequestTimeout:   *reqTimeout,
		MaxBodyBytes:     *maxBody,
		RetryAfter:       *retryAfter,
	}
	handler := http.Handler(correctbench.NewServer(client, correctbench.WithLimits(limits)))
	if *withPprof {
		// Wrap rather than touch the service mux: the profiling surface
		// stays an operator-side add-on, never part of the API contract.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		fmt.Fprintln(os.Stderr, "correctbenchd: pprof enabled on /debug/pprof/")
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Slow-loris defense: a client gets 10s to finish its headers.
		// No blanket write timeout — NDJSON streams are long-lived by
		// design and bounded by their own job lifecycle instead.
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Drain before stopping the listener: cancel every in-flight
		// job, wait for the workers to finish their last cells (each
		// one a store write-back), and flush/close the store — so a
		// rolling restart never loses a completed cell. Closing the
		// client also ends the jobs' NDJSON streams, which is what lets
		// srv.Shutdown finish inside its timeout.
		if err := client.Close(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "correctbenchd: drain:", err)
		}
		_ = srv.Shutdown(shutCtx)
	}()
	fmt.Fprintf(os.Stderr, "correctbenchd: listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "correctbenchd:", err)
		os.Exit(1)
	}
	<-done // the drain goroutine owns the store; let it finish
}

// runWorker serves experiment cells to fleet coordinators until
// SIGTERM/SIGINT, then drains gracefully: the worker broadcasts a
// draining notice on every coordinator connection — so its in-flight
// cells are reassigned immediately instead of timing out against
// health probes — refuses new work, waits out the cells already
// executing, and closes its store.
func runWorker(addr, storeDir string, cellWorkers int) error {
	var st correctbench.Store
	if storeDir != "" {
		var err error
		st, err = correctbench.OpenDiskStore(storeDir)
		if err != nil {
			return err
		}
		stats := st.Stats()
		fmt.Fprintf(os.Stderr, "correctbenchd: worker replay cache %s: %d cells\n", storeDir, stats.Entries)
	}
	if cellWorkers <= 0 {
		cellWorkers = runtime.NumCPU()
	}
	w := correctbench.NewFleetWorker(st, cellWorkers)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Notify coordinators before touching the listener: the draining
		// frames ride the live connections, so by the time this returns
		// every coordinator has requeued this node's cells elsewhere.
		if err := w.Drain(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "correctbenchd: worker drain:", err)
		}
		ln.Close()
		if st != nil {
			_ = st.Close()
		}
	}()
	fmt.Fprintf(os.Stderr, "correctbenchd: fleet worker on %s (%d concurrent cells)\n", addr, cellWorkers)
	serveErr := w.Serve(ln)
	<-done
	if ctx.Err() != nil {
		return nil // clean signal-driven shutdown
	}
	return serveErr
}

// runSelfcheck exercises the full service path end to end: it binds a
// real TCP port, submits a small experiment with a streaming POST,
// consumes the NDJSON event stream to completion, and asserts the
// streamed Table I equals the one computed in-process from the same
// spec — the service must add nothing and lose nothing.
func runSelfcheck() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: correctbench.NewServer(correctbench.NewClient())}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// The dataset must be served.
	resp, err := http.Get(base + "/v1/problems")
	if err != nil {
		return err
	}
	var problems []struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&problems); err != nil {
		return err
	}
	resp.Body.Close()
	if len(problems) != 156 {
		return fmt.Errorf("GET /v1/problems: got %d problems, want 156", len(problems))
	}

	spec := correctbench.ExperimentSpec{
		Seed: 11, Reps: 1, Problems: []string{"adder4", "dff"},
	}
	run, err := runStreamed(base, spec)
	if err != nil {
		return err
	}
	if want := 2 * 3; run.cells != want {
		return fmt.Errorf("streamed %d cell events, want %d", run.cells, want)
	}

	// In-process reference run with the identical spec.
	job, err := correctbench.NewClient().Submit(context.Background(), spec)
	if err != nil {
		return err
	}
	exp, err := job.Wait(context.Background())
	if err != nil {
		return err
	}
	if run.table != exp.Table1() {
		return fmt.Errorf("streamed Table I differs from in-process run:\n--- HTTP ---\n%s\n--- in-process ---\n%s", run.table, exp.Table1())
	}
	if !strings.Contains(run.table, "CorrectBench") {
		return fmt.Errorf("Table I snippet missing methods:\n%s", run.table)
	}
	fmt.Fprintf(os.Stderr, "correctbenchd: selfcheck streamed %d cells; Table I matches in-process run\n", run.cells)

	return storeSelfcheck(spec, run.table)
}

// storeSelfcheck proves the store round trip and resume-by-spec over
// HTTP: a store-backed server runs the spec cold (all cells
// simulated and persisted), then an identical resubmit replays every
// cell from the store — zero simulated, byte-identical Table I — and
// /v1/store/stats agrees.
func storeSelfcheck(spec correctbench.ExperimentSpec, wantTable string) error {
	dir, err := os.MkdirTemp("", "correctbenchd-selfcheck-store")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := correctbench.OpenDiskStore(dir)
	if err != nil {
		return err
	}
	client := correctbench.NewClient(correctbench.WithStore(st))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: correctbench.NewServer(client)}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	defer client.Close(context.Background())
	base := "http://" + ln.Addr().String()

	cold, err := runStreamed(base, spec)
	if err != nil {
		return fmt.Errorf("store cold run: %w", err)
	}
	var stats correctbench.StoreStats
	if err := getJSON(base+"/v1/store/stats", &stats); err != nil {
		return err
	}
	if stats.Entries != cold.cells {
		return fmt.Errorf("store holds %d cells after a %d-cell cold run", stats.Entries, cold.cells)
	}

	warm, err := runStreamed(base, spec)
	if err != nil {
		return fmt.Errorf("store warm resubmit: %w", err)
	}
	if warm.table != cold.table || warm.table != wantTable {
		return fmt.Errorf("warm Table I differs from cold:\n--- warm ---\n%s\n--- cold ---\n%s", warm.table, cold.table)
	}
	var snap correctbench.Snapshot
	if err := getJSON(base+"/v1/experiments/"+warm.jobID, &snap); err != nil {
		return err
	}
	if snap.StoreHits != warm.cells || snap.StoreMisses != 0 {
		return fmt.Errorf("warm resubmit simulated cells: hits=%d misses=%d, want %d/0", snap.StoreHits, snap.StoreMisses, warm.cells)
	}
	fmt.Fprintf(os.Stderr, "correctbenchd: selfcheck store: warm resubmit replayed %d/%d cells, Table I byte-identical\n", snap.StoreHits, warm.cells)
	return nil
}

// streamedRun is what one streaming POST /v1/experiments produced.
type streamedRun struct {
	jobID string
	cells int
	table string
}

// runStreamed submits a spec with "stream": true and drains the
// NDJSON event stream to completion.
func runStreamed(base string, spec correctbench.ExperimentSpec) (streamedRun, error) {
	var run streamedRun
	body, _ := json.Marshal(struct {
		correctbench.ExperimentSpec
		Stream bool `json:"stream"`
	}{spec, true})
	resp, err := http.Post(base+"/v1/experiments", "application/json", bytes.NewReader(body))
	if err != nil {
		return run, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return run, fmt.Errorf("POST /v1/experiments: status %s", resp.Status)
	}
	run.jobID = resp.Header.Get("X-Correctbench-Job")
	done := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		ev, err := correctbench.UnmarshalEvent(sc.Bytes())
		if err != nil {
			return run, err
		}
		switch e := ev.(type) {
		case correctbench.CellFinished:
			run.cells++
		case correctbench.TableReady:
			if e.Name == "table1" {
				run.table = e.Text
			}
		case correctbench.JobDone:
			if e.Err != nil {
				return run, fmt.Errorf("job failed: %v", e.Err)
			}
			done = true
		}
	}
	if err := sc.Err(); err != nil {
		return run, err
	}
	if !done {
		return run, fmt.Errorf("event stream ended without job_done")
	}
	return run, nil
}

// getJSON fetches a URL and decodes its JSON body.
func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
