// Command correctbenchd serves the CorrectBench evaluation pipeline
// over HTTP: experiments are submitted as jobs, progress streams as
// NDJSON events, and results are queried as snapshots. It is the
// service front end of the correctbench.Client/Job API — the same
// contract, the same byte-reproducible event streams.
//
// Usage:
//
//	correctbenchd -addr :8080
//	correctbenchd -selfcheck        # start, drive one experiment over
//	                                # HTTP, verify against in-process
//
// Endpoints:
//
//	POST   /v1/experiments          submit (add "stream": true for NDJSON)
//	GET    /v1/experiments/{id}     snapshot
//	GET    /v1/experiments/{id}/events  NDJSON stream (replay + live)
//	DELETE /v1/experiments/{id}     cancel
//	GET    /v1/problems             dataset listing
//	GET    /v1/llms, /v1/criteria   stable name lists
//	POST   /v1/grade                grade a testbench (or generate+grade)
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"correctbench"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		selfcheck = flag.Bool("selfcheck", false, "start an ephemeral server, run a 2-problem experiment over HTTP, compare with the in-process run, and exit")
	)
	flag.Parse()

	if *selfcheck {
		if err := runSelfcheck(); err != nil {
			fmt.Fprintln(os.Stderr, "correctbenchd: selfcheck FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("correctbenchd: selfcheck ok")
		return
	}

	srv := &http.Server{Addr: *addr, Handler: correctbench.NewServer(correctbench.NewClient())}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}()
	fmt.Fprintf(os.Stderr, "correctbenchd: listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "correctbenchd:", err)
		os.Exit(1)
	}
}

// runSelfcheck exercises the full service path end to end: it binds a
// real TCP port, submits a small experiment with a streaming POST,
// consumes the NDJSON event stream to completion, and asserts the
// streamed Table I equals the one computed in-process from the same
// spec — the service must add nothing and lose nothing.
func runSelfcheck() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: correctbench.NewServer(correctbench.NewClient())}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// The dataset must be served.
	resp, err := http.Get(base + "/v1/problems")
	if err != nil {
		return err
	}
	var problems []struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&problems); err != nil {
		return err
	}
	resp.Body.Close()
	if len(problems) != 156 {
		return fmt.Errorf("GET /v1/problems: got %d problems, want 156", len(problems))
	}

	spec := correctbench.ExperimentSpec{
		Seed: 11, Reps: 1, Problems: []string{"adder4", "dff"},
	}
	body, _ := json.Marshal(struct {
		correctbench.ExperimentSpec
		Stream bool `json:"stream"`
	}{spec, true})
	resp, err = http.Post(base+"/v1/experiments", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/experiments: status %s", resp.Status)
	}

	var (
		streamedTable string
		cells         int
		done          bool
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		ev, err := correctbench.UnmarshalEvent(sc.Bytes())
		if err != nil {
			return err
		}
		switch e := ev.(type) {
		case correctbench.CellFinished:
			cells++
		case correctbench.TableReady:
			if e.Name == "table1" {
				streamedTable = e.Text
			}
		case correctbench.JobDone:
			if e.Err != nil {
				return fmt.Errorf("job failed: %v", e.Err)
			}
			done = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("event stream ended without job_done")
	}
	if want := 2 * 3; cells != want {
		return fmt.Errorf("streamed %d cell events, want %d", cells, want)
	}

	// In-process reference run with the identical spec.
	job, err := correctbench.NewClient().Submit(context.Background(), spec)
	if err != nil {
		return err
	}
	exp, err := job.Wait(context.Background())
	if err != nil {
		return err
	}
	if streamedTable != exp.Table1() {
		return fmt.Errorf("streamed Table I differs from in-process run:\n--- HTTP ---\n%s\n--- in-process ---\n%s", streamedTable, exp.Table1())
	}
	if !strings.Contains(streamedTable, "CorrectBench") {
		return fmt.Errorf("Table I snippet missing methods:\n%s", streamedTable)
	}
	fmt.Fprintf(os.Stderr, "correctbenchd: selfcheck streamed %d cells; Table I matches in-process run\n", cells)
	return nil
}
