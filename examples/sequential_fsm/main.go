// Sequential-circuit walkthrough: the paper's headline improvement is
// on sequential tasks, where reference models must track state across
// cycles. This example runs CorrectBench on shift18 — the 64-bit
// arithmetic shifter used as the corrector demo in the paper's Fig. 5 —
// under all three validation criteria and reports how the action agent
// behaved.
//
// Run with:
//
//	go run ./examples/sequential_fsm
package main

import (
	"fmt"
	"log"

	"correctbench"
)

func main() {
	const task = "shift18"
	p := correctbench.ProblemByName(task)
	fmt.Printf("Task %s (%s, difficulty %d): %s\n\n", p.Name, p.Kind, p.Difficulty, p.Spec)

	for _, criterion := range correctbench.CriterionNames() {
		res, err := correctbench.GenerateTestbench(task, correctbench.Options{
			Seed:      7,
			Criterion: criterion,
		})
		if err != nil {
			log.Fatal(err)
		}
		grade, err := correctbench.Grade(res.Testbench, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("criterion %-12s -> grade %-6s validated=%-5v corrections=%d reboots=%d tokens=%d/%d\n",
			criterion, grade, res.Validated, res.Corrections, res.Reboots, res.TokensIn, res.TokensOut)
	}

	fmt.Println("\nStricter criteria reject more testbenches, which buys extra")
	fmt.Println("corrections/reboots (more tokens) in exchange for a better chance")
	fmt.Println("of a functionally correct final testbench — the Fig. 6(b) trade-off.")
}
