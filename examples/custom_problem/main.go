// Custom problem: CorrectBench only needs a natural-language spec (the
// golden RTL here serves as the behavioural oracle the simulated LLM's
// statistics are anchored to). This example defines a new sequential
// design — a pulse-width measurer — outside the built-in dataset, runs
// the full workflow on it, and simulates the generated driver on the
// embedded Verilog simulator.
//
// Run with:
//
//	go run ./examples/custom_problem
package main

import (
	"fmt"
	"log"
	"os"

	"correctbench"
	"correctbench/internal/sim"
	"correctbench/internal/verilog"
)

const goldenSource = `module pulsewidth(
    input clk,
    input rst,
    input x,
    output reg [3:0] width
);
    reg [3:0] run;
    always @(posedge clk) begin
        if (rst) begin
            run <= 4'd0;
            width <= 4'd0;
        end else if (x) begin
            if (run != 4'd15) run <= run + 4'd1;
        end else begin
            if (run != 4'd0) width <= run;
            run <= 4'd0;
        end
    end
endmodule
`

const spec = "A pulse-width measurer: while the input x is sampled high, an internal counter counts the pulse length (saturating at 15). When x returns low after a pulse, the 4-bit output width latches the measured length and holds it until the next pulse completes. rst clears both the counter and the latched width."

func main() {
	p, err := correctbench.NewProblem("pulsewidth", "SEQ", spec, goldenSource, "rst", 4)
	if err != nil {
		log.Fatal(err)
	}
	res, err := correctbench.GenerateTestbenchFor(p, correctbench.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pulsewidth: validated=%v corrections=%d reboots=%d scenarios=%d\n\n",
		res.Validated, res.Corrections, res.Reboots, res.Testbench.ScenarioCount())

	// The emitted driver is real Verilog: run it on the embedded
	// simulator against the golden RTL, exactly as cmd/vsim would.
	file, err := verilog.Parse(res.Testbench.DriverSource + "\n" + goldenSource)
	if err != nil {
		log.Fatal(err)
	}
	design, err := sim.Elaborate(file, "pulsewidth_tb")
	if err != nil {
		log.Fatal(err)
	}
	inst := sim.NewInstance(design)
	inst.Stdout = os.Stdout
	fmt.Println("Driver simulation output (first scenario):")
	if err := sim.Run(inst, 2000); err != nil {
		log.Fatal(err)
	}
}
