// Validator study: builds a labeled corpus of generated testbenches
// for a handful of tasks and measures each validation criterion's
// accuracy — a scaled-down Fig. 6(a). It demonstrates direct use of
// the internal experiment harness through the same entry points the
// paper-scale cmd/criteria tool uses.
//
// Run with:
//
//	go run ./examples/validator_study
package main

import (
	"fmt"
	"log"

	"correctbench/internal/dataset"
	"correctbench/internal/harness"
)

func main() {
	var probs []*dataset.Problem
	for _, name := range []string{"adder8", "alu4", "prio_enc8", "cnt8", "det101", "shift18", "fifo2", "timer8"} {
		p := dataset.ByName(name)
		if p == nil {
			log.Fatalf("problem %s missing", name)
		}
		probs = append(probs, p)
	}
	rows, err := harness.CriteriaAccuracy(harness.CriteriaAccuracyConfig{
		PerTask:  8,
		Seed:     2025,
		Problems: probs,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(harness.RenderFig6a(rows))
	fmt.Println("Expected trend (paper Section IV-C): as the threshold loosens from")
	fmt.Println("100%-wrong to 50%-wrong the validator gets stricter — accuracy on")
	fmt.Println("wrong testbenches rises while accuracy on correct testbenches falls;")
	fmt.Println("70%-wrong gives the best overall accuracy and is the shipped default.")
}
