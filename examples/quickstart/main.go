// Quickstart: generate a self-validated testbench for one dataset
// problem with the CorrectBench workflow, then grade it with AutoEval.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"correctbench"
)

func main() {
	const task = "adder8"

	p := correctbench.ProblemByName(task)
	fmt.Printf("Task %s (%s, difficulty %d)\n", p.Name, p.Kind, p.Difficulty)
	fmt.Printf("Spec: %s\n\n", p.Spec)

	res, err := correctbench.GenerateTestbench(task, correctbench.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CorrectBench finished: validated=%v corrections=%d reboots=%d\n",
		res.Validated, res.Corrections, res.Reboots)
	fmt.Printf("Simulated LLM cost: %d input / %d output tokens\n",
		res.TokensIn, res.TokensOut)
	fmt.Printf("Testbench: %d scenarios\n\n", res.Testbench.ScenarioCount())

	grade, err := correctbench.Grade(res.Testbench, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AutoEval grade: %s (Eval2 = verdicts agree with the golden testbench on >= 80%% of RTL mutants)\n", grade)

	fmt.Println("\nGenerated driver track (first lines):")
	printHead(res.Testbench.DriverSource, 12)
}

func printHead(s string, lines int) {
	n := 0
	for _, line := range splitLines(s) {
		fmt.Println("  " + line)
		n++
		if n == lines {
			fmt.Println("  ...")
			return
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
