package correctbench

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// GET /metrics: the daemon's operational gauges in Prometheus text
// exposition format (each metric preceded by # HELP and # TYPE
// lines, labeled series grouped under one header). Everything here is
// operational metadata — the same class of data as
// CellFinished.Duration — and never feeds back into scheduling or
// results; experiments stay byte-reproducible no matter what these
// counters say.
//
//	uptime_seconds          seconds since the handler was built
//	jobs_active             experiments running right now
//	jobs_total              jobs retained (running + finished)
//	jobs_degraded           retained jobs that ran in store-degraded mode
//	queue_refusals          submits/grades answered 429 (quota or rate)
//	cells_done              cells released across retained jobs
//	cells_per_sec           cells_done / uptime_seconds (lifetime average)
//	cells_per_sec_1m        cells released per second over the last 60s
//	                        (sliding window; decays to 0 when idle,
//	                        which the lifetime average does not)
//	store_hits              result-store lookups that found a cell
//	store_misses            lookups that simulated instead
//	store_hit_ratio         hits / (hits + misses), 0 when idle
//	fleet_nodes             worker nodes known to the coordinator
//	fleet_node_healthy{node="addr"}    1 healthy, 0 dead/draining
//	fleet_node_assigned{node="addr"}   cells hashed to the node
//	fleet_node_completed{node="addr"}  results accepted from it
//	fleet_node_stolen{node="addr"}     cells it took from peers
//	fleet_node_requeued{node="addr"}   cells moved off it after failure
//	phase_latency_us{phase,node,quantile}  p50/p90/p99 execution
//	                        latency per phase (queue_wait, store_lookup,
//	                        dispatch, net_roundtrip, simulate,
//	                        sim_elaborate, sim_compile, sim_run, grade,
//	                        store_writeback), per node for fleet-executed
//	                        phases, plus _sum/_count series — a
//	                        Prometheus summary fed by every traced cell
//
// Store lines appear only on store-backed clients; fleet lines only
// with a WithExecutor coordinator that keeps per-node accounting;
// phase_latency_us series only once a traced cell has completed.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	// head emits the # HELP / # TYPE header for a metric name, exactly
	// once per name no matter how many labeled series follow.
	head := func(name, typ, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	val := func(v any) string {
		switch x := v.(type) {
		case float64:
			return fmt.Sprintf("%.3f", x)
		case bool:
			if x {
				return "1"
			}
			return "0"
		default:
			return fmt.Sprintf("%v", x)
		}
	}
	line := func(series string, v any) {
		fmt.Fprintf(&b, "%s %s\n", series, val(v))
	}
	single := func(name, typ, help string, v any) {
		head(name, typ, help)
		line(name, v)
	}

	uptime := time.Since(s.start).Seconds()
	single("uptime_seconds", "gauge", "Seconds since the metrics handler was built.", uptime)

	jobs := s.client.Jobs()
	var cellsDone, degraded, running int
	for _, j := range jobs {
		snap := j.Snapshot()
		cellsDone += snap.CellsDone
		if snap.StoreDegraded {
			degraded++
		}
		if snap.State == JobRunning {
			running++
		}
	}
	active, refused := s.adm.counters()
	// adm.active counts reserved HTTP job slots; jobs submitted through
	// the Go API (embedded servers) only show in the retention scan.
	// Report whichever view is larger so neither path undercounts.
	if running > active {
		active = running
	}
	single("jobs_active", "gauge", "Experiments running right now.", active)
	single("jobs_total", "gauge", "Jobs retained by the client (running + finished).", len(jobs))
	single("jobs_degraded", "gauge", "Retained jobs that ran in store-degraded mode.", degraded)
	single("queue_refusals", "counter", "Submits and grades answered 429 (quota or rate).", refused)
	single("cells_done", "counter", "Cells released across retained jobs.", cellsDone)
	rate := 0.0
	if uptime > 0 {
		rate = float64(cellsDone) / uptime
	}
	single("cells_per_sec", "gauge", "Lifetime average cell completion rate (cells_done / uptime_seconds).", rate)
	single("cells_per_sec_1m", "gauge", "Cells released per second over the last 60 seconds (sliding window).",
		s.client.obs.Rate(time.Now()))

	if stats, ok := s.client.StoreStats(); ok {
		single("store_hits", "counter", "Result-store lookups that found a cell.", stats.Hits)
		single("store_misses", "counter", "Result-store lookups that simulated instead.", stats.Misses)
		ratio := 0.0
		if total := stats.Hits + stats.Misses; total > 0 {
			ratio = float64(stats.Hits) / float64(total)
		}
		single("store_hit_ratio", "gauge", "store_hits / (store_hits + store_misses), 0 when idle.", ratio)
	}

	if nodes, ok := s.client.FleetStats(); ok {
		single("fleet_nodes", "gauge", "Worker nodes known to the coordinator.", len(nodes))
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Addr < nodes[j].Addr })
		for _, m := range []struct {
			name, typ, help string
			get             func(NodeStats) any
		}{
			{"fleet_node_healthy", "gauge", "1 when the node answers probes, 0 dead or draining.", func(n NodeStats) any { return n.Healthy }},
			{"fleet_node_assigned", "counter", "Cells consistent-hashed to the node.", func(n NodeStats) any { return n.Assigned }},
			{"fleet_node_completed", "counter", "Results accepted from the node.", func(n NodeStats) any { return n.Completed }},
			{"fleet_node_stolen", "counter", "Cells the node took from peers.", func(n NodeStats) any { return n.Stolen }},
			{"fleet_node_requeued", "counter", "Cells moved off the node after failure.", func(n NodeStats) any { return n.Requeued }},
		} {
			head(m.name, m.typ, m.help)
			for _, n := range nodes {
				line(fmt.Sprintf("%s{node=%q}", m.name, n.Addr), m.get(n))
			}
		}
	}

	if rows := s.client.PhaseLatencies(); len(rows) > 0 {
		head("phase_latency_us", "summary",
			"Execution latency per phase in microseconds, from traced cells (p50/p90/p99 interpolated from power-of-two buckets).")
		series := func(row PhaseStats, extra string) string {
			labels := fmt.Sprintf("phase=%q", row.Phase)
			if row.Node != "" {
				labels += fmt.Sprintf(",node=%q", row.Node)
			}
			if extra != "" {
				labels += "," + extra
			}
			return "{" + labels + "}"
		}
		for _, row := range rows {
			line("phase_latency_us"+series(row, `quantile="0.5"`), row.P50)
			line("phase_latency_us"+series(row, `quantile="0.9"`), row.P90)
			line("phase_latency_us"+series(row, `quantile="0.99"`), row.P99)
			line("phase_latency_us_sum"+series(row, ""), row.SumUS)
			line("phase_latency_us_count"+series(row, ""), row.Count)
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
