package correctbench

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// GET /metrics: the daemon's operational gauges in plain-text
// "key value" lines (one metric per line, fleet gauges labeled by
// node). Everything here is operational metadata — the same class of
// data as CellFinished.Duration — and never feeds back into
// scheduling or results; experiments stay byte-reproducible no matter
// what these counters say.
//
//	uptime_seconds          seconds since the handler was built
//	jobs_active             experiments running right now
//	jobs_total              jobs retained (running + finished)
//	jobs_degraded           retained jobs that ran in store-degraded mode
//	queue_refusals          submits/grades answered 429 (quota or rate)
//	cells_done              cells released across retained jobs
//	cells_per_sec           cells_done / uptime_seconds
//	store_hits              result-store lookups that found a cell
//	store_misses            lookups that simulated instead
//	store_hit_ratio         hits / (hits + misses), 0 when idle
//	fleet_nodes             worker nodes known to the coordinator
//	fleet_node_healthy{node="addr"}    1 healthy, 0 dead/draining
//	fleet_node_assigned{node="addr"}   cells hashed to the node
//	fleet_node_completed{node="addr"}  results accepted from it
//	fleet_node_stolen{node="addr"}     cells it took from peers
//	fleet_node_requeued{node="addr"}   cells moved off it after failure
//
// Store lines appear only on store-backed clients; fleet lines only
// with a WithExecutor coordinator that keeps per-node accounting.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	line := func(key string, v any) {
		switch x := v.(type) {
		case float64:
			fmt.Fprintf(&b, "%s %.3f\n", key, x)
		case bool:
			n := 0
			if x {
				n = 1
			}
			fmt.Fprintf(&b, "%s %d\n", key, n)
		default:
			fmt.Fprintf(&b, "%s %v\n", key, x)
		}
	}

	uptime := time.Since(s.start).Seconds()
	line("uptime_seconds", uptime)

	jobs := s.client.Jobs()
	var cellsDone, degraded, running int
	for _, j := range jobs {
		snap := j.Snapshot()
		cellsDone += snap.CellsDone
		if snap.StoreDegraded {
			degraded++
		}
		if snap.State == JobRunning {
			running++
		}
	}
	active, refused := s.adm.counters()
	// adm.active counts reserved HTTP job slots; jobs submitted through
	// the Go API (embedded servers) only show in the retention scan.
	// Report whichever view is larger so neither path undercounts.
	if running > active {
		active = running
	}
	line("jobs_active", active)
	line("jobs_total", len(jobs))
	line("jobs_degraded", degraded)
	line("queue_refusals", refused)
	line("cells_done", cellsDone)
	rate := 0.0
	if uptime > 0 {
		rate = float64(cellsDone) / uptime
	}
	line("cells_per_sec", rate)

	if stats, ok := s.client.StoreStats(); ok {
		line("store_hits", stats.Hits)
		line("store_misses", stats.Misses)
		ratio := 0.0
		if total := stats.Hits + stats.Misses; total > 0 {
			ratio = float64(stats.Hits) / float64(total)
		}
		line("store_hit_ratio", ratio)
	}

	if nodes, ok := s.client.FleetStats(); ok {
		line("fleet_nodes", len(nodes))
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Addr < nodes[j].Addr })
		for _, n := range nodes {
			label := fmt.Sprintf(`{node=%q}`, n.Addr)
			line("fleet_node_healthy"+label, n.Healthy)
			line("fleet_node_assigned"+label, n.Assigned)
			line("fleet_node_completed"+label, n.Completed)
			line("fleet_node_stolen"+label, n.Stolen)
			line("fleet_node_requeued"+label, n.Requeued)
		}
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
