package correctbench

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"correctbench/internal/autoeval"
	"correctbench/internal/dataset"
	"correctbench/internal/harness"
)

// Event is one element of a Job's typed event stream: a tagged union
// of JobStarted, CellFinished, MethodRepDone, TableReady and JobDone.
// Events are emitted in canonical cell order regardless of the worker
// count, so for a fixed spec and seed the stream is bit-reproducible.
// Exactly two fields are exempt from that contract: JobStarted.Job
// (the per-client job ID, needed on the wire for correlation) and
// CellFinished.Duration (wall clock). MarshalEvent output is
// byte-identical across runs and worker counts once those two are
// normalized; every other field — including every outcome — is a pure
// function of the spec and seed.
type Event interface {
	// Type returns the event's wire tag ("job_started",
	// "cell_finished", "method_rep_done", "table_ready", "job_done").
	Type() string
}

// JobStarted is the first event of every stream. It deliberately
// carries no worker count: the grid fields below are pure functions
// of the spec, keeping the stream byte-identical across Workers
// settings (the submitted Workers value is available from Job.Spec
// and the submit response instead).
type JobStarted struct {
	// Job is the job ID assigned by the Client — the only
	// non-reproducible field of this event.
	Job string
	// Methods, Problems and Reps describe the experiment grid;
	// TotalCells is their product.
	Methods    []string
	Problems   int
	Reps       int
	TotalCells int
}

// Type implements Event.
func (JobStarted) Type() string { return "job_started" }

// CellFinished reports one finished (method, rep, problem) cell.
// Cells arrive in canonical index order.
type CellFinished struct {
	// Index is the canonical cell number (method-major, then rep,
	// then problem).
	Index   int
	Method  string
	Rep     int // 0-based repetition
	Problem string
	Outcome TaskOutcome
	// Duration is the cell's wall-clock execution time (zero for cells
	// replayed from the result store). Like Cached it is operational
	// metadata, not a pure function of the spec.
	Duration time.Duration
	// Cached reports that the cell was replayed from the client's
	// result store instead of simulated. It is not serialized by
	// MarshalEvent: once Duration (the one wall-clock wire field) is
	// normalized, a warm rerun's wire stream is byte-identical to the
	// cold run that populated the store — per-job totals surface in
	// JobDone and Snapshot instead.
	Cached bool
	// Node names the fleet worker that executed the cell ("" for
	// locally executed and store-replayed cells). Operational metadata
	// like Cached — not serialized, so a fleet-executed job streams the
	// same bytes as a local one; per-node totals surface in /metrics.
	Node string
}

// Type implements Event.
func (CellFinished) Type() string { return "cell_finished" }

// MethodRepDone reports that every cell of one (method, repetition)
// group has been released, in canonical group order.
type MethodRepDone struct {
	Method string
	Rep    int // 0-based
	Reps   int // total repetitions
	Tasks  int // cells per group
}

// Type implements Event.
func (MethodRepDone) Type() string { return "method_rep_done" }

// TableReady carries a rendered result table once the experiment is
// complete ("table1" and "table3" are emitted for successful jobs).
type TableReady struct {
	Name string
	Text string
}

// Type implements Event.
func (TableReady) Type() string { return "table_ready" }

// JobDone terminates every stream. Err is nil on success,
// context.Canceled after Job.Cancel (or submit-context cancellation),
// and the canonically first cell error on failure. Results is non-nil
// only on success and is not serialized — the preceding TableReady
// events carry the wire-friendly rendering.
type JobDone struct {
	Results *Experiment
	Err     error
	// StoreHits and StoreMisses count the job's cells replayed from
	// the client's result store versus simulated (both zero without a
	// store). Operational metadata like CellFinished.Cached: not
	// serialized, so warm and cold wire streams stay byte-identical.
	StoreHits   int
	StoreMisses int
	// Store is the run's full result-store accounting including the
	// fault-tolerance counters (write-back retries and drops, breaker
	// trips, degraded cache-bypass mode). Also not serialized: a run
	// against a misbehaving store streams the same bytes as a clean
	// one — that is the robustness contract, and these counters are
	// how operators see what it cost.
	Store StoreUsage
}

// Type implements Event.
func (JobDone) Type() string { return "job_done" }

// ---- NDJSON wire format ----
//
// Every event marshals to a single JSON object whose first field is
// "type"; one object per line is the correctbenchd stream format.
// Field order is fixed by the wire structs, so equal events marshal
// to equal bytes — service responses are byte-stable for caching.

type wireJobStarted struct {
	Type       string   `json:"type"`
	Job        string   `json:"job"`
	Methods    []string `json:"methods"`
	Problems   int      `json:"problems"`
	Reps       int      `json:"reps"`
	TotalCells int      `json:"total_cells"`
}

type wireOutcome struct {
	Grade               string `json:"grade"`
	Kind                string `json:"kind"`
	ValidatorIntervened bool   `json:"validator_intervened,omitempty"`
	CorrectorShaped     bool   `json:"corrector_shaped,omitempty"`
	FinalValidated      bool   `json:"final_validated,omitempty"`
	Corrections         int    `json:"corrections,omitempty"`
	Reboots             int    `json:"reboots,omitempty"`
	TokensIn            int    `json:"tokens_in"`
	TokensOut           int    `json:"tokens_out"`
}

type wireCellFinished struct {
	Type       string      `json:"type"`
	Index      int         `json:"index"`
	Method     string      `json:"method"`
	Rep        int         `json:"rep"`
	Problem    string      `json:"problem"`
	DurationMS float64     `json:"duration_ms"`
	Outcome    wireOutcome `json:"outcome"`
}

type wireMethodRepDone struct {
	Type   string `json:"type"`
	Method string `json:"method"`
	Rep    int    `json:"rep"`
	Reps   int    `json:"reps"`
	Tasks  int    `json:"tasks"`
}

type wireTableReady struct {
	Type string `json:"type"`
	Name string `json:"name"`
	Text string `json:"text"`
}

type wireJobDone struct {
	Type  string `json:"type"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

func toWireOutcome(o TaskOutcome) wireOutcome {
	return wireOutcome{
		Grade:               o.Grade.String(),
		Kind:                o.Kind.String(),
		ValidatorIntervened: o.ValidatorIntervened,
		CorrectorShaped:     o.CorrectorShaped,
		FinalValidated:      o.FinalValidated,
		Corrections:         o.Corrections,
		Reboots:             o.Reboots,
		TokensIn:            o.TokensIn,
		TokensOut:           o.TokensOut,
	}
}

func gradeByName(name string) (autoeval.Grade, error) {
	for _, g := range []autoeval.Grade{autoeval.GradeFailed, autoeval.GradeEval0, autoeval.GradeEval1, autoeval.GradeEval2} {
		if g.String() == name {
			return g, nil
		}
	}
	return 0, fmt.Errorf("correctbench: unknown grade %q", name)
}

func kindByName(name string) (dataset.Kind, error) {
	for _, k := range []dataset.Kind{dataset.CMB, dataset.SEQ} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("correctbench: unknown kind %q", name)
}

func fromWireOutcome(w wireOutcome) (TaskOutcome, error) {
	grade, err := gradeByName(w.Grade)
	if err != nil {
		return TaskOutcome{}, err
	}
	kind, err := kindByName(w.Kind)
	if err != nil {
		return TaskOutcome{}, err
	}
	return TaskOutcome{
		Grade:               grade,
		Kind:                kind,
		ValidatorIntervened: w.ValidatorIntervened,
		CorrectorShaped:     w.CorrectorShaped,
		FinalValidated:      w.FinalValidated,
		Corrections:         w.Corrections,
		Reboots:             w.Reboots,
		TokensIn:            w.TokensIn,
		TokensOut:           w.TokensOut,
	}, nil
}

// MarshalEvent encodes an event as its one-line JSON wire form (no
// trailing newline).
func MarshalEvent(ev Event) ([]byte, error) {
	switch e := ev.(type) {
	case JobStarted:
		methods := e.Methods
		if methods == nil {
			methods = []string{}
		}
		return json.Marshal(wireJobStarted{
			Type: e.Type(), Job: e.Job, Methods: methods, Problems: e.Problems,
			Reps: e.Reps, TotalCells: e.TotalCells,
		})
	case CellFinished:
		return json.Marshal(wireCellFinished{
			Type: e.Type(), Index: e.Index, Method: e.Method, Rep: e.Rep,
			Problem:    e.Problem,
			DurationMS: float64(e.Duration.Microseconds()) / 1000,
			Outcome:    toWireOutcome(e.Outcome),
		})
	case MethodRepDone:
		return json.Marshal(wireMethodRepDone{
			Type: e.Type(), Method: e.Method, Rep: e.Rep, Reps: e.Reps, Tasks: e.Tasks,
		})
	case TableReady:
		return json.Marshal(wireTableReady{Type: e.Type(), Name: e.Name, Text: e.Text})
	case JobDone:
		w := wireJobDone{Type: e.Type(), OK: e.Err == nil}
		if e.Err != nil {
			w.Error = e.Err.Error()
		}
		return json.Marshal(w)
	default:
		return nil, fmt.Errorf("correctbench: unknown event type %T", ev)
	}
}

// wireError is a JobDone error reconstructed from the wire; clients
// comparing against context.Canceled must compare strings.
type wireError string

func (e wireError) Error() string { return string(e) }

// UnmarshalEvent decodes one wire line back into its typed event.
// JobDone.Results is not transported; a decoded JobDone carries only
// the error state.
func UnmarshalEvent(line []byte) (Event, error) {
	var tag struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(line, &tag); err != nil {
		return nil, fmt.Errorf("correctbench: bad event line: %w", err)
	}
	switch tag.Type {
	case "job_started":
		var w wireJobStarted
		if err := json.Unmarshal(line, &w); err != nil {
			return nil, err
		}
		return JobStarted{
			Job: w.Job, Methods: w.Methods, Problems: w.Problems,
			Reps: w.Reps, TotalCells: w.TotalCells,
		}, nil
	case "cell_finished":
		var w wireCellFinished
		if err := json.Unmarshal(line, &w); err != nil {
			return nil, err
		}
		o, err := fromWireOutcome(w.Outcome)
		if err != nil {
			return nil, err
		}
		// The outcome's problem name lives in the event envelope on
		// the wire.
		o.Problem = w.Problem
		return CellFinished{
			Index: w.Index, Method: w.Method, Rep: w.Rep, Problem: w.Problem,
			// Round-trip through integer microseconds: the encoder wrote
			// duration_ms as microseconds/1000, so math.Round(ms*1000)
			// recovers the exact integer even when the division was not
			// representable in binary floating point. Multiplying the raw
			// float by time.Millisecond instead truncates such values by
			// a nanosecond (decode(encode(d)) != d.Truncate(µs)).
			Duration: time.Duration(math.Round(w.DurationMS*1000)) * time.Microsecond,
			Outcome:  o,
		}, nil
	case "method_rep_done":
		var w wireMethodRepDone
		if err := json.Unmarshal(line, &w); err != nil {
			return nil, err
		}
		return MethodRepDone{Method: w.Method, Rep: w.Rep, Reps: w.Reps, Tasks: w.Tasks}, nil
	case "table_ready":
		var w wireTableReady
		if err := json.Unmarshal(line, &w); err != nil {
			return nil, err
		}
		return TableReady{Name: w.Name, Text: w.Text}, nil
	case "job_done":
		var w wireJobDone
		if err := json.Unmarshal(line, &w); err != nil {
			return nil, err
		}
		ev := JobDone{}
		if !w.OK {
			ev.Err = wireError(w.Error)
		}
		return ev, nil
	default:
		return nil, fmt.Errorf("correctbench: unknown event type %q", tag.Type)
	}
}

// TaskOutcome re-exports the harness's per-cell outcome record, the
// payload of CellFinished events.
type TaskOutcome = harness.TaskOutcome
