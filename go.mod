module correctbench

go 1.24
