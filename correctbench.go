// Package correctbench is a from-scratch Go reproduction of
// "CorrectBench: Automatic Testbench Generation with Functional
// Self-Correction using LLMs for HDL Design" (Qiu et al., DATE 2025).
//
// It bundles everything the paper's system needs, implemented on the
// standard library only:
//
//   - a Verilog-2005 subset front end and four-state event-driven
//     simulator (the Icarus Verilog stand-in),
//   - the 156-problem CMB/SEQ benchmark dataset,
//   - a seeded stochastic model of the evaluated LLMs,
//   - the AutoBench and Baseline testbench generators,
//   - the RS-matrix self-validator and two-stage self-corrector,
//   - Algorithm 1's action agent, and
//   - the AutoEval grading pipeline and experiment harness that
//     regenerate every table and figure of the paper.
//
// The public API is job-oriented. A Client owns the caches shared
// across runs; Submit starts an experiment job whose typed events
// stream in canonical order; Wait, Cancel and Snapshot complete the
// lifecycle:
//
//	c := correctbench.NewClient()
//	job, err := c.Submit(ctx, correctbench.ExperimentSpec{Reps: 5, Seed: 42})
//	for ev := range job.Events() { ... }
//	exp, err := job.Wait(ctx)
//	fmt.Println(exp.Table1())
//
// Single tasks run through the same client:
//
//	res, err := c.GenerateTestbench(ctx, "shift18", correctbench.TaskSpec{Seed: 1})
//	grade, err := c.Grade(ctx, res.Testbench, 1)
//
// cmd/correctbenchd serves the identical contract over HTTP (NDJSON
// event streams). The blocking helpers GenerateTestbench, Grade and
// RunExperiment remain as deprecated wrappers over a package-level
// client.
package correctbench

import (
	"context"
	"fmt"
	"io"

	"correctbench/internal/autoeval"
	"correctbench/internal/core"
	"correctbench/internal/dataset"
	"correctbench/internal/harness"
	"correctbench/internal/llm"
	"correctbench/internal/testbench"
	"correctbench/internal/validator"
)

// defaultClient backs the deprecated blocking facade functions, so
// even legacy callers share fixture caches across calls.
var defaultClient = NewClient()

// Problem re-exports the dataset task type.
type Problem = dataset.Problem

// Testbench re-exports the hybrid testbench artifact.
type Testbench = testbench.Testbench

// Grade re-exports AutoEval's grade.
type GradeLevel = autoeval.Grade

// Grade levels.
const (
	Failed = autoeval.GradeFailed
	Eval0  = autoeval.GradeEval0
	Eval1  = autoeval.GradeEval1
	Eval2  = autoeval.GradeEval2
)

// Problems returns the 156-task dataset.
func Problems() []*Problem { return dataset.All() }

// ProblemByName looks a task up by name (nil when absent).
func ProblemByName(name string) *Problem { return dataset.ByName(name) }

// Options configures a single CorrectBench task run.
//
// Deprecated: Options cannot express explicit zero budgets — its
// MaxCorrections/MaxReboots/RTLGroupSize fields treat 0 as "paper
// default" (the documented legacy behavior, preserved here). New code
// should use TaskSpec, whose pointer-valued budget fields distinguish
// "unset" from "explicitly zero".
type Options struct {
	// Seed drives every random choice; equal seeds reproduce runs
	// exactly.
	Seed int64
	// LLM selects the model profile by name ("gpt-4o",
	// "claude-3.5-sonnet", "gpt-4o-mini"); default gpt-4o.
	LLM string
	// Criterion selects the validation criterion ("100%-wrong",
	// "70%-wrong", "50%-wrong"); default the paper's 70%-wrong.
	Criterion string
	// MaxCorrections (I_C^max), MaxReboots (I_R^max) and RTLGroupSize
	// (N_R) default to the paper's 3 / 10 / 20.
	MaxCorrections int
	MaxReboots     int
	RTLGroupSize   int
}

// taskSpec converts legacy Options to a TaskSpec, preserving the
// documented `> 0` guard semantics: a zero budget field means "paper
// default", never "disable".
func (o Options) taskSpec() TaskSpec {
	s := TaskSpec{Seed: o.Seed, LLM: o.LLM, Criterion: o.Criterion}
	if o.MaxCorrections > 0 {
		s.MaxCorrections = Int(o.MaxCorrections)
	}
	if o.MaxReboots > 0 {
		s.MaxReboots = Int(o.MaxReboots)
	}
	if o.RTLGroupSize > 0 {
		s.RTLGroupSize = Int(o.RTLGroupSize)
	}
	return s
}

func (o Options) resolve() (core.Options, error) {
	return o.taskSpec().resolve()
}

// TaskResult is the outcome of one CorrectBench task.
type TaskResult struct {
	Testbench *Testbench
	// Validated reports whether the final testbench was passed because
	// the self-validator accepted it (as opposed to budget exhaustion).
	Validated bool
	// Corrections and Reboots count the agent's actions.
	Corrections, Reboots int
	// TokensIn/TokensOut are the simulated LLM token costs.
	TokensIn, TokensOut int
}

// GenerateTestbench runs the full CorrectBench workflow (Algorithm 1)
// on the named dataset problem.
//
// Deprecated: use Client.GenerateTestbench, which adds cancellation
// and shares fixture caches across calls.
func GenerateTestbench(problem string, o Options) (*TaskResult, error) {
	return defaultClient.GenerateTestbench(context.Background(), problem, o.taskSpec())
}

// GenerateTestbenchFor is GenerateTestbench for an explicit problem
// (including user-defined ones; see NewProblem).
//
// Deprecated: use Client.GenerateTestbenchFor.
func GenerateTestbenchFor(p *Problem, o Options) (*TaskResult, error) {
	return defaultClient.GenerateTestbenchFor(context.Background(), p, o.taskSpec())
}

// Grade evaluates a testbench with AutoEval (Table II) and returns its
// grade. The seed fixes the mutant fixtures.
//
// Deprecated: use Client.Grade, which adds cancellation and reuses
// mutant fixtures across calls with the same seed.
func Grade(tb *Testbench, seed int64) (GradeLevel, error) {
	return defaultClient.Grade(context.Background(), tb, seed)
}

// NewProblem registers nothing globally; it simply builds a custom
// problem value usable with GenerateTestbenchFor. kind is "CMB" or
// "SEQ"; for SEQ problems clock must be "clk" and reset names the
// synchronous reset input ("" when the design is flushed by a load).
func NewProblem(name, kind, spec, goldenSource, reset string, difficulty int) (*Problem, error) {
	k := dataset.CMB
	switch kind {
	case "CMB":
	case "SEQ":
		k = dataset.SEQ
	default:
		return nil, fmt.Errorf("correctbench: kind must be CMB or SEQ, got %q", kind)
	}
	p := &Problem{
		Name: name, Kind: k, Spec: spec, Source: goldenSource, Top: name,
		Difficulty: difficulty, Reset: reset,
	}
	if k == dataset.SEQ {
		p.Clock = "clk"
	}
	if _, err := p.Elaborate(); err != nil {
		return nil, fmt.Errorf("correctbench: golden source invalid: %w", err)
	}
	return p, nil
}

// ExperimentConfig configures a whole-dataset experiment.
//
// Deprecated: use ExperimentSpec with Client.Submit, which adds
// per-cell event streams, cancellation and explicit-zero budgets.
type ExperimentConfig struct {
	Seed int64
	Reps int
	// LLM and Criterion as in Options.
	LLM       string
	Criterion string
	// Problems restricts the task set (default: all 156).
	ProblemNames []string
	// Workers bounds how many (method, rep, problem) cells run
	// concurrently: 0 uses all CPUs, 1 forces a sequential run. Every
	// setting produces identical results for a given Seed — each cell
	// draws from its own hierarchically derived random stream.
	Workers int
	// Progress receives one line per finished (method, repetition),
	// in canonical order regardless of Workers.
	Progress io.Writer
}

// Experiment wraps harness results with the formatting helpers.
type Experiment struct {
	*harness.Results
}

// RunExperiment runs the three methods over the dataset and returns
// the aggregated results (Table I / Table III / Fig. 7 panel).
//
// Deprecated: use Client.Submit and Job.Wait. This wrapper submits a
// job on the package-level client, forwards cfg.Progress, and blocks
// until completion.
func RunExperiment(cfg ExperimentConfig) (*Experiment, error) {
	spec := ExperimentSpec{
		Seed: cfg.Seed, Reps: cfg.Reps, LLM: cfg.LLM, Criterion: cfg.Criterion,
		Problems: cfg.ProblemNames, Workers: cfg.Workers,
	}
	job, err := defaultClient.submit(context.Background(), spec, cfg.Progress)
	if err != nil {
		return nil, err
	}
	return job.Wait(context.Background())
}

// LLMNames lists the available model profiles. The order is stable
// and documented — gpt-4o, claude-3.5-sonnet, gpt-4o-mini (the
// paper's column order) — so responses built from it (GET /v1/llms)
// are byte-stable for caching. Every returned name round-trips
// through the LLM field of Options/TaskSpec/ExperimentSpec.
func LLMNames() []string {
	var out []string
	for _, p := range llm.Profiles() {
		out = append(out, p.Name)
	}
	return out
}

// CriterionNames lists the available validation criteria. The order
// is stable and documented — 100%-wrong, 70%-wrong, 50%-wrong (the
// paper's study order) — so responses built from it (GET
// /v1/criteria) are byte-stable for caching. Every returned name
// round-trips through the Criterion field of
// Options/TaskSpec/ExperimentSpec.
func CriterionNames() []string {
	var out []string
	for _, c := range validator.Criteria() {
		out = append(out, c.Name)
	}
	return out
}
