// Package correctbench is a from-scratch Go reproduction of
// "CorrectBench: Automatic Testbench Generation with Functional
// Self-Correction using LLMs for HDL Design" (Qiu et al., DATE 2025).
//
// It bundles everything the paper's system needs, implemented on the
// standard library only:
//
//   - a Verilog-2005 subset front end and four-state event-driven
//     simulator (the Icarus Verilog stand-in),
//   - the 156-problem CMB/SEQ benchmark dataset,
//   - a seeded stochastic model of the evaluated LLMs,
//   - the AutoBench and Baseline testbench generators,
//   - the RS-matrix self-validator and two-stage self-corrector,
//   - Algorithm 1's action agent, and
//   - the AutoEval grading pipeline and experiment harness that
//     regenerate every table and figure of the paper.
//
// This file is the public facade. The simplest entry points:
//
//	res, err := correctbench.GenerateTestbench("shift18", correctbench.Options{Seed: 1})
//	grade, err := correctbench.Grade(res.Testbench, 1)
//
// and, for whole experiments,
//
//	out, err := correctbench.RunExperiment(correctbench.ExperimentConfig{Reps: 5, Seed: 42})
//	fmt.Println(out.Table1())
package correctbench

import (
	"fmt"
	"io"
	"math/rand"

	"correctbench/internal/autoeval"
	"correctbench/internal/core"
	"correctbench/internal/dataset"
	"correctbench/internal/harness"
	"correctbench/internal/llm"
	"correctbench/internal/testbench"
	"correctbench/internal/validator"
)

// Problem re-exports the dataset task type.
type Problem = dataset.Problem

// Testbench re-exports the hybrid testbench artifact.
type Testbench = testbench.Testbench

// Grade re-exports AutoEval's grade.
type GradeLevel = autoeval.Grade

// Grade levels.
const (
	Failed = autoeval.GradeFailed
	Eval0  = autoeval.GradeEval0
	Eval1  = autoeval.GradeEval1
	Eval2  = autoeval.GradeEval2
)

// Problems returns the 156-task dataset.
func Problems() []*Problem { return dataset.All() }

// ProblemByName looks a task up by name (nil when absent).
func ProblemByName(name string) *Problem { return dataset.ByName(name) }

// Options configures a single CorrectBench task run.
type Options struct {
	// Seed drives every random choice; equal seeds reproduce runs
	// exactly.
	Seed int64
	// LLM selects the model profile by name ("gpt-4o",
	// "claude-3.5-sonnet", "gpt-4o-mini"); default gpt-4o.
	LLM string
	// Criterion selects the validation criterion ("100%-wrong",
	// "70%-wrong", "50%-wrong"); default the paper's 70%-wrong.
	Criterion string
	// MaxCorrections (I_C^max), MaxReboots (I_R^max) and RTLGroupSize
	// (N_R) default to the paper's 3 / 10 / 20.
	MaxCorrections int
	MaxReboots     int
	RTLGroupSize   int
}

func (o Options) resolve() (core.Options, error) {
	prof := llm.GPT4o()
	if o.LLM != "" {
		prof = llm.ByName(o.LLM)
		if prof == nil {
			return core.Options{}, fmt.Errorf("correctbench: unknown LLM profile %q", o.LLM)
		}
	}
	opt := core.DefaultOptions(prof)
	if o.Criterion != "" {
		c, err := validator.CriterionByName(o.Criterion)
		if err != nil {
			return core.Options{}, err
		}
		opt.Criterion = c
	}
	if o.MaxCorrections > 0 {
		opt.MaxCorrections = o.MaxCorrections
	}
	if o.MaxReboots > 0 {
		opt.MaxReboots = o.MaxReboots
	}
	if o.RTLGroupSize > 0 {
		opt.NR = o.RTLGroupSize
	}
	return opt, nil
}

// TaskResult is the outcome of one CorrectBench task.
type TaskResult struct {
	Testbench *Testbench
	// Validated reports whether the final testbench was passed because
	// the self-validator accepted it (as opposed to budget exhaustion).
	Validated bool
	// Corrections and Reboots count the agent's actions.
	Corrections, Reboots int
	// TokensIn/TokensOut are the simulated LLM token costs.
	TokensIn, TokensOut int
}

// GenerateTestbench runs the full CorrectBench workflow (Algorithm 1)
// on the named dataset problem.
func GenerateTestbench(problem string, o Options) (*TaskResult, error) {
	p := dataset.ByName(problem)
	if p == nil {
		return nil, fmt.Errorf("correctbench: unknown problem %q", problem)
	}
	return GenerateTestbenchFor(p, o)
}

// GenerateTestbenchFor is GenerateTestbench for an explicit problem
// (including user-defined ones; see NewProblem).
func GenerateTestbenchFor(p *Problem, o Options) (*TaskResult, error) {
	opt, err := o.resolve()
	if err != nil {
		return nil, err
	}
	res, err := core.Run(p, opt, rand.New(rand.NewSource(o.Seed)))
	if err != nil {
		return nil, err
	}
	return &TaskResult{
		Testbench:   res.Testbench,
		Validated:   res.Trace.FinalValidated,
		Corrections: res.Trace.Corrections,
		Reboots:     res.Trace.Reboots,
		TokensIn:    res.Trace.Tokens.In,
		TokensOut:   res.Trace.Tokens.Out,
	}, nil
}

// Grade evaluates a testbench with AutoEval (Table II) and returns its
// grade. The seed fixes the mutant fixtures.
func Grade(tb *Testbench, seed int64) (GradeLevel, error) {
	return autoeval.NewEvaluator(seed).Evaluate(tb)
}

// NewProblem registers nothing globally; it simply builds a custom
// problem value usable with GenerateTestbenchFor. kind is "CMB" or
// "SEQ"; for SEQ problems clock must be "clk" and reset names the
// synchronous reset input ("" when the design is flushed by a load).
func NewProblem(name, kind, spec, goldenSource, reset string, difficulty int) (*Problem, error) {
	k := dataset.CMB
	switch kind {
	case "CMB":
	case "SEQ":
		k = dataset.SEQ
	default:
		return nil, fmt.Errorf("correctbench: kind must be CMB or SEQ, got %q", kind)
	}
	p := &Problem{
		Name: name, Kind: k, Spec: spec, Source: goldenSource, Top: name,
		Difficulty: difficulty, Reset: reset,
	}
	if k == dataset.SEQ {
		p.Clock = "clk"
	}
	if _, err := p.Elaborate(); err != nil {
		return nil, fmt.Errorf("correctbench: golden source invalid: %w", err)
	}
	return p, nil
}

// ExperimentConfig configures a whole-dataset experiment.
type ExperimentConfig struct {
	Seed int64
	Reps int
	// LLM and Criterion as in Options.
	LLM       string
	Criterion string
	// Problems restricts the task set (default: all 156).
	ProblemNames []string
	// Workers bounds how many (method, rep, problem) cells run
	// concurrently: 0 uses all CPUs, 1 forces a sequential run. Every
	// setting produces identical results for a given Seed — each cell
	// draws from its own hierarchically derived random stream.
	Workers int
	// Progress receives one line per finished (method, repetition),
	// in canonical order regardless of Workers.
	Progress io.Writer
}

// Experiment wraps harness results with the formatting helpers.
type Experiment struct {
	*harness.Results
}

// RunExperiment runs the three methods over the dataset and returns
// the aggregated results (Table I / Table III / Fig. 7 panel).
func RunExperiment(cfg ExperimentConfig) (*Experiment, error) {
	hcfg := harness.Config{Seed: cfg.Seed, Reps: cfg.Reps, Workers: cfg.Workers, Progress: cfg.Progress}
	if cfg.LLM != "" {
		prof := llm.ByName(cfg.LLM)
		if prof == nil {
			return nil, fmt.Errorf("correctbench: unknown LLM profile %q", cfg.LLM)
		}
		hcfg.Profile = prof
	}
	if cfg.Criterion != "" {
		c, err := validator.CriterionByName(cfg.Criterion)
		if err != nil {
			return nil, err
		}
		hcfg.Criterion = c
	}
	for _, n := range cfg.ProblemNames {
		p := dataset.ByName(n)
		if p == nil {
			return nil, fmt.Errorf("correctbench: unknown problem %q", n)
		}
		hcfg.Problems = append(hcfg.Problems, p)
	}
	res, err := harness.Run(hcfg)
	if err != nil {
		return nil, err
	}
	return &Experiment{Results: res}, nil
}

// LLMNames lists the available model profiles.
func LLMNames() []string {
	var out []string
	for _, p := range llm.Profiles() {
		out = append(out, p.Name)
	}
	return out
}

// CriterionNames lists the available validation criteria.
func CriterionNames() []string {
	var out []string
	for _, c := range validator.Criteria() {
		out = append(out, c.Name)
	}
	return out
}
