package correctbench

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// phaseSet collects the distinct phase names of one cell's span tree.
func phaseSet(ct CellTrace) map[string]bool {
	out := map[string]bool{}
	for _, sp := range ct.Spans {
		out[sp.Phase] = true
	}
	return out
}

// TestJobTrace pins the Job.Trace surface on a store-backed local
// run: one span tree per cell in canonical order, the documented
// phases present, IDs unique and parents resolvable — and on a warm
// resubmit every cell degenerates to a single cached store_lookup
// span.
func TestJobTrace(t *testing.T) {
	c := NewClient(WithStore(NewMemoryStore(0)))
	spec := ExperimentSpec{Seed: 31, Reps: 1, Problems: testProblems, Workers: 4}
	total := 3 * len(testProblems)

	job, _, _ := drainJob(t, c, spec)
	traces := job.Trace()
	if len(traces) != total {
		t.Fatalf("Trace() returned %d cells, want %d", len(traces), total)
	}
	for i, ct := range traces {
		if ct.Index != i {
			t.Fatalf("trace %d has index %d; Cells() must be in canonical order", i, ct.Index)
		}
		if ct.Cached {
			t.Errorf("cell %d marked cached on a cold run", i)
		}
		if len(ct.Key) != 64 {
			t.Errorf("cell %d trace ID %q is not a content-address hex digest", i, ct.Key)
		}
		for _, want := range []string{"queue_wait", "store_lookup", "simulate", "grade", "store_writeback"} {
			if !phaseSet(ct)[want] {
				t.Errorf("cell %d (%s/%s) has no %s span: %+v", i, ct.Method, ct.Problem, want, ct.Spans)
			}
		}
		ids := map[string]bool{}
		for _, sp := range ct.Spans {
			if ids[sp.ID] {
				t.Errorf("cell %d has duplicate span ID %s", i, sp.ID)
			}
			ids[sp.ID] = true
			if sp.DurUS < 0 || sp.StartUS < 0 {
				t.Errorf("cell %d span %s has negative timing (start=%d dur=%d)", i, sp.Phase, sp.StartUS, sp.DurUS)
			}
		}
		for _, sp := range ct.Spans {
			if sp.Parent != "" && !ids[sp.Parent] {
				t.Errorf("cell %d span %s has dangling parent %s", i, sp.Phase, sp.Parent)
			}
		}
	}

	// The client-level histograms saw the run.
	rows := c.PhaseLatencies()
	if len(rows) == 0 {
		t.Fatal("PhaseLatencies empty after a traced run")
	}
	seen := map[string]bool{}
	for _, row := range rows {
		seen[row.Phase] = true
		if row.Count == 0 {
			t.Errorf("phase %s has a row but zero count", row.Phase)
		}
	}
	for _, want := range []string{"queue_wait", "simulate", "grade"} {
		if !seen[want] {
			t.Errorf("PhaseLatencies missing phase %s (got %v)", want, seen)
		}
	}

	// Warm resubmit: every cell replays from the store; its trace is
	// the one-span cached form.
	warm, _, _ := drainJob(t, c, spec)
	wtraces := warm.Trace()
	if len(wtraces) != total {
		t.Fatalf("warm Trace() returned %d cells, want %d", len(wtraces), total)
	}
	for i, ct := range wtraces {
		if !ct.Cached {
			t.Errorf("warm cell %d not marked cached", i)
		}
		if len(ct.Spans) != 1 || ct.Spans[0].Phase != "store_lookup" {
			t.Errorf("warm cell %d spans = %+v, want a single store_lookup", i, ct.Spans)
		}
	}
}

// TestJobTraceOptOut pins the no_trace escape hatch: a job submitted
// with NoTrace records nothing and Job.Trace returns nil.
func TestJobTraceOptOut(t *testing.T) {
	spec := ExperimentSpec{Seed: 31, Reps: 1, Problems: []string{"halfadd"}, NoTrace: true}
	job, _, _ := drainJob(t, NewClient(), spec)
	if got := job.Trace(); got != nil {
		t.Fatalf("Trace() on a no_trace job = %d cells, want nil", len(got))
	}
}

// TestTraceEndpoint drives GET /v1/experiments/{id}/trace (and its
// /v1/jobs alias) over HTTP: the NDJSON body parses back into the
// job's span trees in canonical order, and a no_trace job answers
// 404.
func TestTraceEndpoint(t *testing.T) {
	c := NewClient()
	ts := httptest.NewServer(NewServer(c))
	t.Cleanup(ts.Close)

	spec := ExperimentSpec{Seed: 31, Reps: 1, Problems: testProblems}
	resp := postJSON(t, ts.URL+"/v1/experiments", spec)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %s", resp.Status)
	}
	job := c.Jobs()[0]
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	fetch := func(path string) []CellTrace {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("GET %s content type = %q, want application/x-ndjson", path, ct)
		}
		var out []CellTrace
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			var ct CellTrace
			if err := json.Unmarshal(sc.Bytes(), &ct); err != nil {
				t.Fatalf("GET %s: bad NDJSON line %q: %v", path, sc.Text(), err)
			}
			out = append(out, ct)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	total := 3 * len(testProblems)
	traces := fetch("/v1/experiments/" + job.ID() + "/trace")
	if len(traces) != total {
		t.Fatalf("trace endpoint streamed %d cells, want %d", len(traces), total)
	}
	for i, ct := range traces {
		if ct.Index != i {
			t.Fatalf("trace line %d has index %d, want canonical order", i, ct.Index)
		}
		if len(ct.Spans) == 0 {
			t.Errorf("cell %d has no spans over the wire", i)
		}
	}
	alias := fetch("/v1/jobs/" + job.ID() + "/trace")
	if len(alias) != len(traces) {
		t.Errorf("/v1/jobs alias streamed %d cells, want %d", len(alias), len(traces))
	}

	// A no_trace job keeps no spans; the endpoint must say so, not
	// stream an empty body.
	resp = postJSON(t, ts.URL+"/v1/experiments", ExperimentSpec{
		Seed: 31, Reps: 1, Problems: []string{"halfadd"}, NoTrace: true,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("no_trace submit status = %s", resp.Status)
	}
	var opted *Job
	for _, j := range c.Jobs() {
		if j.ID() != job.ID() {
			opted = j
		}
	}
	if opted == nil {
		t.Fatal("no_trace job not retained")
	}
	if _, err := opted.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	notFound, err := http.Get(ts.URL + "/v1/experiments/" + opted.ID() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	notFound.Body.Close()
	if notFound.StatusCode != http.StatusNotFound {
		t.Fatalf("trace of a no_trace job answered %s, want 404", notFound.Status)
	}
}

var (
	// seriesRe matches one Prometheus series line: a metric name, an
	// optional {label="value",...} set with double-quoted values, and a
	// value.
	seriesRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [^ ]+$`)
	headerRe = regexp.MustCompile(`^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*) (.+)$`)
)

// parseExposition validates /metrics against the Prometheus text
// format: every # HELP/# TYPE appears once per metric name, every
// series line is well formed and its metric name (modulo the summary
// _sum/_count suffixes) has a preceding # TYPE. It returns the typed
// names and the set of series names seen.
func parseExposition(t *testing.T, raw string) (types map[string]string, series map[string]bool) {
	t.Helper()
	types = map[string]string{}
	series = map[string]bool{}
	helped := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(raw, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			m := headerRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed exposition comment %q", line)
			}
			kind, name := m[1], m[2]
			if kind == "HELP" {
				if helped[name] {
					t.Fatalf("duplicate # HELP for %s", name)
				}
				helped[name] = true
				continue
			}
			if _, dup := types[name]; dup {
				t.Fatalf("duplicate # TYPE for %s", name)
			}
			types[name] = m[3]
			continue
		}
		m := seriesRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed series line %q", line)
		}
		name := m[1]
		base := name
		for _, suffix := range []string{"_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, suffix); trimmed != name && types[trimmed] == "summary" {
				base = trimmed
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("series %s has no preceding # TYPE", name)
		}
		if !helped[base] {
			t.Fatalf("series %s has no preceding # HELP", name)
		}
		series[name+m[2]] = true
	}
	return types, series
}

func scrapeRaw(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if got := resp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q, want the version 0.0.4 exposition type", got)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestMetricsExposition validates the /metrics surface as Prometheus
// text exposition on a store-backed client after a traced run: format
// strictness via parseExposition, every documented metric present,
// and the phase-latency summary populated.
func TestMetricsExposition(t *testing.T) {
	c := NewClient(WithStore(NewMemoryStore(0)))
	ts := httptest.NewServer(NewServer(c))
	t.Cleanup(ts.Close)

	drainJob(t, c, ExperimentSpec{Seed: 31, Reps: 1, Problems: testProblems, Workers: 4})

	types, series := parseExposition(t, scrapeRaw(t, ts.URL))
	wantTypes := map[string]string{
		"uptime_seconds": "gauge", "jobs_active": "gauge", "jobs_total": "gauge",
		"jobs_degraded": "gauge", "queue_refusals": "counter", "cells_done": "counter",
		"cells_per_sec": "gauge", "cells_per_sec_1m": "gauge",
		"store_hits": "counter", "store_misses": "counter", "store_hit_ratio": "gauge",
		"phase_latency_us": "summary",
	}
	for name, typ := range wantTypes {
		if got, ok := types[name]; !ok {
			t.Errorf("metric %s missing from exposition", name)
		} else if got != typ {
			t.Errorf("metric %s typed %q, want %q", name, got, typ)
		}
	}
	for _, want := range []string{
		`phase_latency_us{phase="simulate",quantile="0.5"}`,
		`phase_latency_us{phase="simulate",quantile="0.9"}`,
		`phase_latency_us{phase="simulate",quantile="0.99"}`,
		`phase_latency_us_sum{phase="simulate"}`,
		`phase_latency_us_count{phase="simulate"}`,
		`phase_latency_us{phase="queue_wait",quantile="0.5"}`,
		`phase_latency_us{phase="store_writeback",quantile="0.5"}`,
	} {
		if !series[want] {
			t.Errorf("series %s missing from exposition", want)
		}
	}
	// The sliding-window rate must register a run that just finished —
	// that is the satellite fix over the decaying lifetime average.
	found := false
	for s := range series {
		if s == "cells_per_sec_1m" {
			found = true
		}
	}
	if !found {
		t.Error("cells_per_sec_1m series missing")
	}
}

// TestMetricsExpositionFleet validates the fleet view: per-node
// gauges match FleetStats and fleet-executed phases show node-labeled
// latency series.
func TestMetricsExpositionFleet(t *testing.T) {
	f := startFleet(t, 2, nil)
	c := NewClient(WithExecutor(f.executor(t)))
	ts := httptest.NewServer(NewServer(c))
	t.Cleanup(ts.Close)

	drainJob(t, c, fleetSpec(4))

	raw := scrapeRaw(t, ts.URL)
	types, series := parseExposition(t, raw)
	if types["fleet_nodes"] != "gauge" {
		t.Fatalf("fleet_nodes typed %q, want gauge", types["fleet_nodes"])
	}
	nodes, ok := c.FleetStats()
	if !ok {
		t.Fatal("FleetStats unavailable on a fleet-backed client")
	}
	m := scrapeMetrics(t, ts.URL)
	if got := metricInt(t, m, "fleet_nodes"); got != len(nodes) {
		t.Errorf("fleet_nodes = %d, want %d", got, len(nodes))
	}
	completed := 0
	for _, n := range nodes {
		key := `fleet_node_completed{node="` + n.Addr + `"}`
		got := metricInt(t, m, key)
		completed += got
		// The scrape and FleetStats race only against a finished fleet,
		// so the values must agree exactly.
		if uint64(got) != n.Completed {
			t.Errorf("%s = %d, FleetStats says %d", key, got, n.Completed)
		}
	}
	if wantCells := 3 * len(testProblems); completed != wantCells {
		t.Errorf("fleet completed %d cells across nodes, want %d", completed, wantCells)
	}
	// Fleet-executed phases carry the worker address as a node label.
	nodeLabeled := false
	for s := range series {
		if strings.HasPrefix(s, `phase_latency_us{phase="net_roundtrip",node="`) {
			nodeLabeled = true
		}
	}
	if !nodeLabeled {
		t.Errorf("no node-labeled net_roundtrip latency series after a fleet run:\n%s", raw)
	}
}

// TestTracingDifferentialEventStreams is the tentpole acceptance
// criterion for the observability PR: tracing is operational metadata
// only, so a traced run and a no_trace run of the same spec must
// stream byte-identical events (after the two documented wall-clock
// normalizations) and render byte-identical tables — at Workers 1 and
// 8, on the local pool and on a 4-node fleet.
func TestTracingDifferentialEventStreams(t *testing.T) {
	_, baseEvents, baseExp := drainJob(t, NewClient(), withNoTrace(fleetSpec(1)))
	baseline := marshalNormalized(t, baseEvents)
	t1, t3 := baseExp.Table1(), baseExp.Table3()

	fleet := startFleet(t, 4, nil)
	runs := []struct {
		name    string
		fleet   bool
		workers int
		noTrace bool
	}{
		{"local_traced_w1", false, 1, false},
		{"local_traced_w8", false, 8, false},
		{"local_no_trace_w8", false, 8, true},
		{"fleet_no_trace_w8", true, 8, true},
		{"fleet_traced_w1", true, 1, false},
		{"fleet_traced_w8", true, 8, false},
	}
	for _, run := range runs {
		var opts []ClientOption
		if run.fleet {
			opts = append(opts, WithExecutor(fleet.executor(t)))
		}
		spec := fleetSpec(run.workers)
		spec.NoTrace = run.noTrace
		job, events, exp := drainJob(t, NewClient(opts...), spec)
		if got := marshalNormalized(t, events); string(got) != string(baseline) {
			t.Errorf("%s: event stream differs from the no_trace baseline", run.name)
		}
		if exp.Table1() != t1 {
			t.Errorf("%s: Table I differs from the no_trace baseline", run.name)
		}
		if exp.Table3() != t3 {
			t.Errorf("%s: Table III differs from the no_trace baseline", run.name)
		}
		if run.noTrace {
			if job.Trace() != nil {
				t.Errorf("%s: no_trace job recorded spans", run.name)
			}
		} else if got := len(job.Trace()); got != 3*len(testProblems) {
			t.Errorf("%s: traced %d cells, want %d", run.name, got, 3*len(testProblems))
		}
	}
}

func withNoTrace(spec ExperimentSpec) ExperimentSpec {
	spec.NoTrace = true
	return spec
}
