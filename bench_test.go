package correctbench

// One benchmark per table and figure of the paper, plus
// microbenchmarks of the substrate. The per-experiment benchmarks run
// the exact code paths that regenerate the published artifacts but on
// reduced task subsets so that `go test -bench=.` completes in
// minutes; the cmd/ tools run the full-scale versions (156 tasks,
// 5 repetitions) and EXPERIMENTS.md records their output.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"correctbench/internal/autoeval"
	"correctbench/internal/dataset"
	"correctbench/internal/harness"
	"correctbench/internal/llm"
	"correctbench/internal/sim"
	"correctbench/internal/testbench"
	"correctbench/internal/validator"
	"correctbench/internal/verilog"
)

// benchProblems is the fixed CMB/SEQ mix used by the experiment-scale
// benchmarks (shared with cmd/benchjson via dataset.BenchmarkMix).
func benchProblems(b *testing.B) []*dataset.Problem {
	b.Helper()
	return dataset.BenchmarkMix()
}

// BenchmarkTable1MainResults regenerates Table I (three methods,
// Eval0/1/2 by group) on the benchmark subset.
func BenchmarkTable1MainResults(b *testing.B) {
	probs := benchProblems(b)
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(harness.Config{Reps: 1, Seed: int64(i) + 1, Problems: probs})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Table1()
	}
}

// BenchmarkTable1Workers regenerates Table I at several worker-pool
// widths. Results are identical at every width (the harness derives
// per-cell random streams), so the sub-benchmarks measure pure
// scheduling gain; cmd/benchjson records the same numbers as JSON for
// the perf trajectory.
func BenchmarkTable1Workers(b *testing.B) {
	probs := benchProblems(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.Config{
					Reps: 1, Seed: int64(i) + 1, Problems: probs, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = res.Table1()
			}
		})
	}
}

// BenchmarkTable3AttributionParallel is BenchmarkTable3Attribution
// over a full-width worker pool.
func BenchmarkTable3AttributionParallel(b *testing.B) {
	probs := benchProblems(b)
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(harness.Config{
			Reps: 1, Seed: int64(i) + 10, Problems: probs, Workers: runtime.GOMAXPROCS(0),
			Methods: []harness.Method{harness.MethodCorrectBench, harness.MethodAutoBench},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Table3()
	}
}

// BenchmarkTable3Attribution regenerates Table III (validator and
// corrector contributions).
func BenchmarkTable3Attribution(b *testing.B) {
	probs := benchProblems(b)
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(harness.Config{
			Reps: 1, Seed: int64(i) + 10, Problems: probs,
			Methods: []harness.Method{harness.MethodCorrectBench, harness.MethodAutoBench},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Table3()
	}
}

// BenchmarkFig4RSMatrix builds and renders an RS matrix for one task
// (N_R = 20), the artifact of Fig. 4.
func BenchmarkFig4RSMatrix(b *testing.B) {
	p := dataset.ByName("cnt8")
	prof := llm.GPT4o()
	rng := rand.New(rand.NewSource(4))
	var acct llm.Accountant
	group, err := validator.GenerateRTLGroup(p, prof, 20, rng, &acct)
	if err != nil {
		b.Fatal(err)
	}
	scs, err := testbench.GenerateScenarios(p, rng, testbench.Coverage{Scenarios: 10, Steps: 12, Corners: true})
	if err != nil {
		b.Fatal(err)
	}
	tb := &testbench.Testbench{Problem: p, Scenarios: scs, CheckerSource: p.Source, CheckerTop: p.Top, CheckerSticky: -1}
	tb.DriverSource = testbench.EmitDriver(tb)
	v := &validator.Validator{Criterion: validator.Wrong70}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, ok := v.BuildMatrix(tb, group)
		if !ok {
			b.Fatal("matrix build failed")
		}
		_ = m.Render()
	}
}

// BenchmarkFig6aValidatorAccuracy runs the labeled-corpus criteria
// study of Fig. 6(a) on the benchmark subset.
func BenchmarkFig6aValidatorAccuracy(b *testing.B) {
	probs := benchProblems(b)
	for i := 0; i < b.N; i++ {
		rows, err := harness.CriteriaAccuracy(harness.CriteriaAccuracyConfig{
			PerTask: 3, Seed: int64(i) + 20, Problems: probs,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = harness.RenderFig6a(rows)
	}
}

// BenchmarkFig6bCriteriaPipeline runs the whole framework under each
// validation criterion, the experiment of Fig. 6(b).
func BenchmarkFig6bCriteriaPipeline(b *testing.B) {
	probs := benchProblems(b)[:6]
	for i := 0; i < b.N; i++ {
		rows, err := harness.CriteriaPipeline(harness.Config{Reps: 1, Seed: int64(i) + 30, Problems: probs})
		if err != nil {
			b.Fatal(err)
		}
		_ = harness.RenderFig6b(rows)
	}
}

// BenchmarkFig7LLMComparison runs the three methods under each LLM
// profile, the experiment of Fig. 7.
func BenchmarkFig7LLMComparison(b *testing.B) {
	probs := benchProblems(b)[:6]
	for i := 0; i < b.N; i++ {
		for _, prof := range llm.Profiles() {
			res, err := harness.Run(harness.Config{
				Reps: 1, Seed: int64(i) + 40, Problems: probs, Profile: prof,
			})
			if err != nil {
				b.Fatal(err)
			}
			_ = harness.RenderFig7(prof.Name, res.Fig7Rows())
		}
	}
}

// ---- substrate microbenchmarks ----

// BenchmarkParse measures the Verilog front end on a mid-size module.
func BenchmarkParse(b *testing.B) {
	src := dataset.ByName("shift18").Source
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := verilog.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkElaborate measures flattening and binding.
func BenchmarkElaborate(b *testing.B) {
	src := dataset.ByName("fifo2").Source
	for i := 0; i < b.N; i++ {
		if _, err := sim.ElaborateSource(src, "fifo2"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimTick measures clocked-simulation throughput on each
// engine; the compiled/interp ratio is the AOT-compilation gain of the
// inner loop (cmd/benchjson records the same comparison as JSON).
func BenchmarkSimTick(b *testing.B) {
	d, err := sim.ElaborateSource(dataset.ByName("cnt8").Source, "cnt8")
	if err != nil {
		b.Fatal(err)
	}
	for _, eng := range []sim.Engine{sim.EngineCompiled, sim.EngineInterp} {
		b.Run(eng.String(), func(b *testing.B) {
			in := sim.NewInstanceEngine(d, eng)
			if err := in.ZeroInputs(); err != nil {
				b.Fatal(err)
			}
			in.SetInputUint("rst", 1)
			in.Tick("clk")
			in.SetInputUint("rst", 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := in.Tick("clk"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTestbenchRunEngines measures a full golden-TB run per
// engine on a sequential problem (pooled instances, compiled vs
// interpreted bodies).
func BenchmarkTestbenchRunEngines(b *testing.B) {
	p := dataset.ByName("det101")
	d, err := p.Elaborate()
	if err != nil {
		b.Fatal(err)
	}
	for _, eng := range []sim.Engine{sim.EngineCompiled, sim.EngineInterp} {
		b.Run(eng.String(), func(b *testing.B) {
			tb, err := testbench.Golden(p, rand.New(rand.NewSource(1)))
			if err != nil {
				b.Fatal(err)
			}
			tb.Engine = eng
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := tb.RunAgainstDesign(d)
				if err != nil {
					b.Fatalf("run failed: %v", err)
				}
				if !res.Pass() {
					b.Fatalf("golden RTL failed scenarios %v", res.FailedScenarios())
				}
			}
		})
	}
}

// BenchmarkTestbenchRun measures a full golden-TB-vs-golden-RTL run.
func BenchmarkTestbenchRun(b *testing.B) {
	p := dataset.ByName("det101")
	tb, err := testbench.Golden(p, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	d, err := p.Elaborate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tb.RunAgainstDesign(d)
		if err != nil || !res.Pass() {
			b.Fatalf("run failed: %v", err)
		}
	}
}

// BenchmarkEval2 measures one full AutoEval grading.
func BenchmarkEval2(b *testing.B) {
	p := dataset.ByName("alu4")
	e := autoeval.NewEvaluator(7)
	tb, err := e.GoldenTestbench(p)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Evaluate(tb); err != nil { // warm fixtures
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Evaluate(tb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorrectBenchTask measures one whole Algorithm 1 task.
func BenchmarkCorrectBenchTask(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTestbench("cnt8", Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
