package correctbench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"correctbench/internal/dataset"
	"correctbench/internal/testbench"
	"correctbench/internal/vstatic"
)

// NewServer returns the correctbenchd HTTP handler over a client:
//
//	POST   /v1/experiments        submit an ExperimentSpec; with
//	                              "stream": true the response is the
//	                              job's NDJSON event stream and the
//	                              job's lifetime is bound to the
//	                              request (disconnect = Cancel)
//	GET    /v1/experiments/{id}   job snapshot (live partial results)
//	GET    /v1/experiments/{id}/events   NDJSON event stream (replay +
//	                              live; disconnecting stops only the
//	                              stream, not the job)
//	GET    /v1/experiments/{id}/trace    per-cell span trees as NDJSON
//	                              (one CellTrace per line, canonical
//	                              cell order; also at
//	                              /v1/jobs/{id}/trace; 404 for NoTrace
//	                              jobs). Feed it to cmd/traceview.
//	DELETE /v1/experiments/{id}   cancel the job
//	GET    /v1/problems           the 156-task dataset, stable order
//	GET    /v1/llms               model profile names, stable order
//	GET    /v1/criteria           validation criterion names, stable order
//	POST   /v1/grade              grade a submitted testbench, or
//	                              generate-and-grade a task
//	GET    /v1/store/stats        result-store counters (404 when the
//	                              client has no store)
//	GET    /metrics               operational gauges in Prometheus
//	                              text exposition format (store hit
//	                              ratio, cells/s, active jobs,
//	                              refusals, per-node fleet counters,
//	                              per-phase latency summaries)
//
// When the client carries a result store (correctbenchd -store-dir),
// POST /v1/experiments has resume-by-spec semantics: resubmitting an
// identical spec — after a crash, a cancel, or simply again — replays
// every already-finished cell from the store and simulates only the
// remainder, streaming the same events either way. Snapshots report
// the split as store_hits/store_misses.
//
// The handler is stdlib-only and safe for concurrent use. Job
// retention is bounded by the client (see maxRetainedJobs): snapshots
// and event streams of long-evicted finished jobs return 404.
//
// Admission control is configured with WithLimits: bounded concurrent
// jobs (globally and per client), per-client token-bucket rate limits
// on the mutating endpoints, per-request timeouts on grading, and
// request body caps. Refused work is answered with 429 + Retry-After
// (quota/rate) or 413 (body size); the defaults (DefaultLimits) keep
// everything unlimited except the body cap. The returned handler also
// carries panic recovery: a panicking request answers 500 — after
// cancelling its job, if it owned one — without killing the daemon.
func NewServer(c *Client, opts ...ServerOption) http.Handler {
	s := &server{client: c, limits: DefaultLimits(), start: time.Now()}
	for _, o := range opts {
		o(s)
	}
	s.adm = newAdmission(s.limits)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", s.submit)
	mux.HandleFunc("GET /v1/experiments/{id}", s.snapshot)
	mux.HandleFunc("GET /v1/experiments/{id}/events", s.events)
	mux.HandleFunc("GET /v1/experiments/{id}/trace", s.trace)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.trace) // alias
	mux.HandleFunc("DELETE /v1/experiments/{id}", s.cancel)
	mux.HandleFunc("GET /v1/problems", s.problems)
	mux.HandleFunc("GET /v1/llms", s.llms)
	mux.HandleFunc("GET /v1/criteria", s.criteria)
	mux.HandleFunc("POST /v1/grade", s.grade)
	mux.HandleFunc("GET /v1/store/stats", s.storeStats)
	mux.HandleFunc("GET /metrics", s.metrics)
	return recoverPanics(mux)
}

type server struct {
	client *Client
	limits Limits
	adm    *admission
	start  time.Time // handler construction, the uptime_seconds epoch
}

type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, httpError{Error: err.Error()})
}

// submitRequest is the POST /v1/experiments body: an ExperimentSpec
// plus the stream flag.
type submitRequest struct {
	ExperimentSpec
	// Stream, when true, turns the response into the job's NDJSON
	// event stream and binds the job's lifetime to the HTTP request:
	// a client disconnect cancels the job within one simulation step
	// batch.
	Stream bool `json:"stream,omitempty"`
}

type submitResponse struct {
	ID         string `json:"id"`
	TotalCells int    `json:"total_cells"`
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	key := clientKey(r)
	if !s.adm.allowRate(key, time.Now()) {
		s.adm.tooMany(w, errors.New("rate limit exceeded"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.adm.lim.MaxBodyBytes)
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		if isBodyTooLarge(err) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body over %d bytes", s.adm.lim.MaxBodyBytes))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	// Claim a concurrent-job slot before spending any work on the
	// spec; the slot is held until the job finishes (however it
	// finishes), not just until this request returns.
	release, admErr := s.adm.reserveJob(key, time.Now())
	if admErr != nil {
		s.adm.tooMany(w, admErr)
		return
	}
	// Detached jobs outlive the submitting request; streamed jobs are
	// bound to it.
	ctx := context.Background()
	if req.Stream {
		ctx = r.Context()
	}
	job, err := s.client.Submit(ctx, req.ExperimentSpec)
	if err != nil {
		release()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	go func() {
		<-job.done
		release()
	}()
	if !req.Stream {
		writeJSON(w, http.StatusAccepted, submitResponse{ID: job.ID(), TotalCells: job.Snapshot().TotalCells})
		return
	}
	// A panic while streaming must not leave the job running headless:
	// cancel it, then re-panic into the recovery middleware for the
	// 500 (or connection abort, if bytes already went out).
	defer func() {
		if v := recover(); v != nil {
			job.Cancel()
			panic(v)
		}
	}()
	s.streamEvents(w, r, job)
}

// streamEvents writes the job's events as NDJSON until JobDone (or
// the request context ends), flushing after every line.
func (s *server) streamEvents(w http.ResponseWriter, r *http.Request, job *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Correctbench-Job", job.ID())
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for ev := range job.EventsContext(r.Context()) {
		line, err := MarshalEvent(ev)
		if err != nil {
			return
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *server) jobFor(w http.ResponseWriter, r *http.Request) *Job {
	job := s.client.Job(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", r.PathValue("id")))
	}
	return job
}

func (s *server) snapshot(w http.ResponseWriter, r *http.Request) {
	job := s.jobFor(w, r)
	if job == nil {
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

func (s *server) events(w http.ResponseWriter, r *http.Request) {
	job := s.jobFor(w, r)
	if job == nil {
		return
	}
	s.streamEvents(w, r, job)
}

// trace streams a job's per-cell span trees as NDJSON: one CellTrace
// object per line, in canonical cell order, reflecting the cells
// released so far (a finished job streams the full grid). Tracing is
// on unless the job was submitted with no_trace, in which case this
// answers 404.
func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	job := s.jobFor(w, r)
	if job == nil {
		return
	}
	if !job.traced() {
		writeError(w, http.StatusNotFound, fmt.Errorf("experiment %q was submitted with no_trace", job.ID()))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Correctbench-Job", job.ID())
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, ct := range job.Trace() {
		if err := enc.Encode(ct); err != nil {
			return
		}
	}
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	job := s.jobFor(w, r)
	if job == nil {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, job.Snapshot())
}

type problemInfo struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	Difficulty int    `json:"difficulty"`
}

func (s *server) problems(w http.ResponseWriter, r *http.Request) {
	out := make([]problemInfo, 0, len(dataset.All()))
	for _, p := range dataset.All() {
		out = append(out, problemInfo{Name: p.Name, Kind: p.Kind.String(), Difficulty: p.Difficulty})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) llms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, LLMNames())
}

func (s *server) criteria(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, CriterionNames())
}

func (s *server) storeStats(w http.ResponseWriter, r *http.Request) {
	stats, ok := s.client.StoreStats()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no result store configured (start correctbenchd with -store-dir)"))
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

// gradeRequest is the POST /v1/grade body. With Testbench set, that
// testbench is graded as-is; otherwise one is generated for the
// problem with the task spec fields and then graded (a whole-task
// round trip).
type gradeRequest struct {
	Problem string `json:"problem"`
	TaskSpec
	Testbench *wireTestbench `json:"testbench,omitempty"`
}

// wireTestbench is the serializable subset of a hybrid testbench:
// the scenario list (driver track) and the checker module source.
type wireTestbench struct {
	Scenarios     []wireScenario `json:"scenarios"`
	CheckerSource string         `json:"checker_source"`
	CheckerTop    string         `json:"checker_top,omitempty"`
}

type wireScenario struct {
	Name  string              `json:"name,omitempty"`
	Steps []map[string]uint64 `json:"steps"`
}

type gradeResponse struct {
	Problem     string `json:"problem"`
	Grade       string `json:"grade"`
	Generated   bool   `json:"generated"`
	Validated   bool   `json:"validated,omitempty"`
	Corrections int    `json:"corrections,omitempty"`
	Reboots     int    `json:"reboots,omitempty"`
	TokensIn    int    `json:"tokens_in,omitempty"`
	TokensOut   int    `json:"tokens_out,omitempty"`
	Scenarios   int    `json:"scenarios"`
	// Lint carries static-analysis diagnostics for the testbench's
	// checker module (advisory; grading never depends on them).
	Lint []vstatic.Diagnostic `json:"lint,omitempty"`
}

// lintChecker statically analyzes a testbench's checker module for
// the grade response. Analysis failures (e.g. an unparsable checker)
// yield no diagnostics here — grading itself surfaces them as grades.
func lintChecker(tb *Testbench) []vstatic.Diagnostic {
	if tb == nil || tb.CheckerSource == "" {
		return nil
	}
	results, err := vstatic.AnalyzeSource(tb.CheckerSource, tb.CheckerTop)
	if err != nil {
		return nil
	}
	var out []vstatic.Diagnostic
	for _, r := range results {
		out = append(out, r.Diags...)
	}
	return out
}

func (s *server) grade(w http.ResponseWriter, r *http.Request) {
	if !s.adm.allowRate(clientKey(r), time.Now()) {
		s.adm.tooMany(w, errors.New("rate limit exceeded"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.adm.lim.MaxBodyBytes)
	var req gradeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		if isBodyTooLarge(err) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body over %d bytes", s.adm.lim.MaxBodyBytes))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	p := dataset.ByName(req.Problem)
	if p == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown problem %q", req.Problem))
		return
	}
	// Surface spec errors as 400 up front; any later failure is a
	// run-time fault, not a bad request.
	if _, err := req.TaskSpec.resolve(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Grading is synchronous request work, so it gets the per-request
	// timeout; a deadline hit surfaces as 504 via statusFor.
	ctx := r.Context()
	if s.adm.lim.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.adm.lim.RequestTimeout)
		defer cancel()
	}
	resp := gradeResponse{Problem: req.Problem}
	var tb *Testbench
	if req.Testbench != nil {
		tb = wireToTestbench(p, req.Testbench)
	} else {
		res, err := s.client.GenerateTestbench(ctx, req.Problem, req.TaskSpec)
		if err != nil {
			writeError(w, statusFor(ctx, err), err)
			return
		}
		tb = res.Testbench
		resp.Generated = true
		resp.Validated = res.Validated
		resp.Corrections = res.Corrections
		resp.Reboots = res.Reboots
		resp.TokensIn = res.TokensIn
		resp.TokensOut = res.TokensOut
	}
	grade, err := s.client.Grade(ctx, tb, req.Seed)
	if err != nil {
		writeError(w, statusFor(ctx, err), err)
		return
	}
	resp.Grade = grade.String()
	resp.Scenarios = tb.ScenarioCount()
	resp.Lint = lintChecker(tb)
	writeJSON(w, http.StatusOK, resp)
}

// statusClientClosedRequest is nginx's 499: the client went away
// before the response. Go's stdlib has no name for it, but it is the
// accurate status for a request-context cancel — the old mapping of
// both context errors to 408 blamed the client for server-side
// deadlines and vice versa.
const statusClientClosedRequest = 499

// statusFor maps run-time failures to HTTP statuses: a client
// disconnect (the request context itself was cancelled) to 499, a
// server-imposed deadline to 504, any other context cancellation —
// e.g. the daemon draining — to 503, and everything else to 500. Spec
// validation has already returned 400 by the time this is consulted,
// so remaining errors are server-side faults.
func statusFor(ctx context.Context, err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		if ctx != nil && ctx.Err() != nil {
			return statusClientClosedRequest
		}
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// wireToTestbench rebuilds a gradable testbench from its wire form.
// Unknown stimulus ports or a broken checker surface as grades
// (Failed/Eval0) exactly as they would for a generated testbench.
func wireToTestbench(p *Problem, w *wireTestbench) *Testbench {
	tb := &Testbench{
		Problem:       p,
		CheckerSource: w.CheckerSource,
		CheckerTop:    w.CheckerTop,
		CheckerSticky: -1,
	}
	if tb.CheckerTop == "" {
		tb.CheckerTop = p.Top
	}
	for i, sc := range w.Scenarios {
		scenario := testbench.Scenario{Index: i + 1, Name: sc.Name}
		if scenario.Name == "" {
			scenario.Name = fmt.Sprintf("scenario_%d", i+1)
		}
		for _, inputs := range sc.Steps {
			scenario.Steps = append(scenario.Steps, testbench.Step{Inputs: inputs})
		}
		tb.Scenarios = append(tb.Scenarios, scenario)
	}
	tb.DriverSource = testbench.EmitDriver(tb)
	return tb
}
