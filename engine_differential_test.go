package correctbench

import (
	"testing"

	"correctbench/internal/dataset"
	"correctbench/internal/harness"
	"correctbench/internal/sim"
)

// TestTableOutputEngineDifferential runs the full Table-I pipeline —
// three methods over the benchmark problem mix — once per simulation
// engine and asserts byte-identical published tables. Together with
// validator.TestCompiledEngineDifferential (RS matrices over all
// dataset problems) this is the end-to-end proof that compiling the
// simulator changed only speed, never results.
func TestTableOutputEngineDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full table pipeline; skipped in -short mode")
	}
	probs := dataset.BenchmarkMix()

	runTables := func(e sim.Engine) (string, string) {
		prev := sim.DefaultEngine
		sim.DefaultEngine = e
		defer func() { sim.DefaultEngine = prev }()
		res, err := harness.Run(harness.Config{Reps: 1, Seed: 42, Problems: probs, Workers: 2})
		if err != nil {
			t.Fatalf("harness (%s): %v", e, err)
		}
		return res.Table1(), res.Table3()
	}

	t1c, t3c := runTables(sim.EngineCompiled)
	t1i, t3i := runTables(sim.EngineInterp)
	t1b, t3b := runTables(sim.EngineBatched)
	if t1c != t1i {
		t.Errorf("Table I differs between engines\ncompiled:\n%s\ninterp:\n%s", t1c, t1i)
	}
	if t3c != t3i {
		t.Errorf("Table III differs between engines\ncompiled:\n%s\ninterp:\n%s", t3c, t3i)
	}
	if t1b != t1i {
		t.Errorf("Table I differs between engines\nbatched:\n%s\ninterp:\n%s", t1b, t1i)
	}
	if t3b != t3i {
		t.Errorf("Table III differs between engines\nbatched:\n%s\ninterp:\n%s", t3b, t3i)
	}
}
